// Tests for the sequential-consistency checker, including the canonical
// histories that separate SC from linearizability.

#include "lin/sc_checker.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "lin/checker.hpp"

namespace lintime::lin {
namespace {

using adt::Value;
using sim::OpRecord;

OpRecord op(sim::ProcId proc, const std::string& name, Value arg, Value ret, double inv,
            double resp, std::uint64_t uid = 0) {
  OpRecord r;
  r.proc = proc;
  r.op = name;
  r.arg = std::move(arg);
  r.ret = std::move(ret);
  r.invoke_real = inv;
  r.response_real = resp;
  r.uid = uid;
  return r;
}

TEST(ScCheckerTest, EmptyHistory) {
  adt::RegisterType reg;
  EXPECT_TRUE(check_sequential_consistency(reg, std::vector<OpRecord>{}).linearizable);
}

TEST(ScCheckerTest, StaleRemoteReadIsScButNotLinearizable) {
  // The canonical separator: a write completes, a later read at another
  // process returns the old value.  Linearizability forbids it; sequential
  // consistency allows it (the read moves before the write).
  adt::RegisterType reg;
  const std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 1, 1),
      op(1, "read", Value::nil(), 0, 2, 3, 2),
  };
  EXPECT_FALSE(check_linearizability(reg, h).linearizable);
  EXPECT_TRUE(check_sequential_consistency(reg, h).linearizable);
}

TEST(ScCheckerTest, ProgramOrderStillEnforced) {
  // Same stale read at the SAME process: program order pins read after
  // write, so even sequential consistency rejects it.
  adt::RegisterType reg;
  const std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 1, 1),
      op(0, "read", Value::nil(), 0, 2, 3, 2),
  };
  EXPECT_FALSE(check_sequential_consistency(reg, h).linearizable);
}

TEST(ScCheckerTest, CrossReadsOfIndependentWritesNotSc) {
  // The classic "IRIW-like" violation for registers via a queue: two
  // processes observe two enqueues in OPPOSITE orders -- no single total
  // order exists, so not sequentially consistent either.
  adt::QueueType queue;
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1, 1),
      op(1, "enqueue", 2, Value::nil(), 0, 1, 2),
      // p2 dequeues 1 then 2; p3 dequeues... both claim the head.
      op(2, "peek", Value::nil(), 1, 5, 6, 3),
      op(3, "peek", Value::nil(), 2, 5, 6, 4),
  };
  EXPECT_FALSE(check_sequential_consistency(queue, h).linearizable);
}

TEST(ScCheckerTest, DoubleDequeueNotSc) {
  adt::QueueType queue;
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1, 1),
      op(1, "dequeue", Value::nil(), 1, 2, 3, 2),
      op(2, "dequeue", Value::nil(), 1, 2, 3, 3),
  };
  EXPECT_FALSE(check_sequential_consistency(queue, h).linearizable);
}

TEST(ScCheckerTest, LinearizableImpliesSc) {
  adt::QueueType queue;
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1, 1),
      op(1, "dequeue", Value::nil(), 1, 2, 3, 2),
      op(2, "peek", Value::nil(), Value::nil(), 4, 5, 3),
  };
  ASSERT_TRUE(check_linearizability(queue, h).linearizable);
  EXPECT_TRUE(check_sequential_consistency(queue, h).linearizable);
}

TEST(ScCheckerTest, ProgramOrderTieBrokenByUid) {
  // Two same-process ops sharing an invocation boundary: uid decides order.
  adt::RegisterType reg;
  const std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 1, 1),
      op(0, "read", Value::nil(), 5, 1, 2, 2),
  };
  EXPECT_TRUE(check_sequential_consistency(reg, h).linearizable);
  const std::vector<OpRecord> bad = {
      op(0, "write", 5, Value::nil(), 0, 1, 2),
      op(0, "read", Value::nil(), 0, 1, 2, 3),  // stale, after the write in PO
  };
  EXPECT_FALSE(check_sequential_consistency(reg, bad).linearizable);
}

}  // namespace
}  // namespace lintime::lin
