// Unit tests for the linearizability checker on hand-crafted histories.

#include "lin/checker.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"

namespace lintime::lin {
namespace {

using adt::Value;
using sim::OpRecord;

OpRecord op(sim::ProcId proc, const std::string& name, Value arg, Value ret, double inv,
            double resp) {
  OpRecord r;
  r.proc = proc;
  r.op = name;
  r.arg = std::move(arg);
  r.ret = std::move(ret);
  r.invoke_real = inv;
  r.response_real = resp;
  return r;
}

TEST(CheckerTest, EmptyHistoryIsLinearizable) {
  adt::RegisterType reg;
  EXPECT_TRUE(check_linearizability(reg, std::vector<OpRecord>{}).linearizable);
}

TEST(CheckerTest, SequentialLegalHistory) {
  adt::RegisterType reg;
  std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 1),
      op(1, "read", Value::nil(), 5, 2, 3),
  };
  EXPECT_TRUE(check_linearizability(reg, h).linearizable);
}

TEST(CheckerTest, SequentialIllegalHistory) {
  adt::RegisterType reg;
  std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 1),
      op(1, "read", Value::nil(), 7, 2, 3),  // wrong value
  };
  EXPECT_FALSE(check_linearizability(reg, h).linearizable);
}

TEST(CheckerTest, StaleReadAfterCompletedWriteIsIllegal) {
  adt::RegisterType reg;
  std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 1),
      op(1, "read", Value::nil(), 0, 2, 3),  // must have seen the write
  };
  EXPECT_FALSE(check_linearizability(reg, h).linearizable);
}

TEST(CheckerTest, StaleReadConcurrentWithWriteIsLegal) {
  adt::RegisterType reg;
  std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 10),
      op(1, "read", Value::nil(), 0, 2, 3),  // overlaps the write: may precede it
  };
  EXPECT_TRUE(check_linearizability(reg, h).linearizable);
}

TEST(CheckerTest, ConcurrentReadsMayDisagreeOnlyInRealTimeOrder) {
  adt::RegisterType reg;
  // read(5) at [2,3] and read(0) at [4,6]: the later read cannot return the
  // older value once a read already returned the new one after the write
  // completed.
  std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 10),
      op(1, "read", Value::nil(), 5, 2, 3),
      op(2, "read", Value::nil(), 0, 4, 6),
  };
  EXPECT_FALSE(check_linearizability(reg, h).linearizable);
}

TEST(CheckerTest, NewOldInversionAllowedWhileWritePending) {
  adt::RegisterType reg;
  // Opposite order: old value first, new value second -- fine.
  std::vector<OpRecord> h = {
      op(0, "write", 5, Value::nil(), 0, 10),
      op(1, "read", Value::nil(), 0, 2, 3),
      op(2, "read", Value::nil(), 5, 4, 6),
  };
  EXPECT_TRUE(check_linearizability(reg, h).linearizable);
}

TEST(CheckerTest, DoubleDequeueOfSameElementIllegal) {
  adt::QueueType queue;
  std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(1, "dequeue", Value::nil(), 1, 2, 3),
      op(2, "dequeue", Value::nil(), 1, 2.5, 3.5),
  };
  EXPECT_FALSE(check_linearizability(queue, h).linearizable);
}

TEST(CheckerTest, ConcurrentDequeuesOfDistinctElementsLegal) {
  adt::QueueType queue;
  std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(0, "enqueue", 2, Value::nil(), 1.5, 2),
      op(1, "dequeue", Value::nil(), 2, 3, 4),
      op(2, "dequeue", Value::nil(), 1, 3, 4),
  };
  EXPECT_TRUE(check_linearizability(queue, h).linearizable);
}

TEST(CheckerTest, WitnessIsALegalLinearization) {
  adt::QueueType queue;
  std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 5),
      op(1, "enqueue", 2, Value::nil(), 0, 5),
      op(2, "dequeue", Value::nil(), 2, 6, 7),
  };
  const auto result = check_linearizability(queue, h);
  ASSERT_TRUE(result.linearizable);
  ASSERT_EQ(result.witness.size(), 3u);
  // The witness must start with enqueue(2) for dequeue to return 2.
  EXPECT_EQ(h[result.witness[0]].arg, Value{2});
  // And it must be a permutation.
  std::vector<bool> seen(3, false);
  for (auto idx : result.witness) seen[idx] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(CheckerTest, RealTimeOrderRespectedAcrossProcesses) {
  adt::QueueType queue;
  // enqueue(1) completes before enqueue(2) starts; dequeue must return 1.
  std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(1, "enqueue", 2, Value::nil(), 2, 3),
      op(2, "dequeue", Value::nil(), 2, 4, 5),
  };
  EXPECT_FALSE(check_linearizability(queue, h).linearizable);
}

TEST(CheckerTest, IncompleteRecordThrows) {
  adt::RegisterType reg;
  OpRecord pending = op(0, "read", Value::nil(), Value::nil(), 5, 6);
  pending.response_real = -1;
  EXPECT_THROW((void)check_linearizability(reg, std::vector<OpRecord>{pending}),
               std::invalid_argument);
}

TEST(CheckerTest, MemoizationHandlesManyConcurrentCommutingOps) {
  // 12 fully concurrent enqueues of only two distinct values: factorially
  // many interleavings, but the memo table keeps the search polynomial-ish.
  adt::QueueType queue;
  std::vector<OpRecord> h;
  for (int i = 0; i < 12; ++i) {
    h.push_back(op(i % 3, "enqueue", i % 2, Value::nil(), 0, 100));
  }
  const auto result = check_linearizability(queue, h);
  EXPECT_TRUE(result.linearizable);
  EXPECT_LT(result.nodes_expanded, 100000u);
}

TEST(CheckerTest, WitnessToStringRendersSequence) {
  adt::RegisterType reg;
  std::vector<OpRecord> h = {op(0, "write", 5, Value::nil(), 0, 1)};
  const auto result = check_linearizability(reg, h);
  ASSERT_TRUE(result.linearizable);
  EXPECT_NE(result.witness_to_string(h).find("write"), std::string::npos);
}

}  // namespace
}  // namespace lintime::lin
