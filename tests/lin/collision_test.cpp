// Forced-collision test for the memoized checker: a data type whose states
// all share one (degenerate) fingerprint must still be checked correctly,
// because the memo verifies the stored canonical() form before pruning.  A
// fingerprint collision may cost re-exploration -- never a wrong verdict.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "adt/fingerprint.hpp"
#include "adt/state_base.hpp"
#include "lin/checker.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin {
namespace {

using adt::OpCategory;
using adt::OpSpec;
using adt::Value;

/// Register-like state whose fingerprint is the same constant for EVERY
/// value -- the worst possible hash.  canonical() still distinguishes
/// states, which is exactly what the memo's collision check relies on.
class CollidingState final : public adt::StateBase<CollidingState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    if (op == "write") {
      value_ = arg.as_int();
      return Value::nil();
    }
    if (op == "read") return Value{value_};
    if (op == "swap") {
      const auto old = value_;
      value_ = arg.as_int();
      return Value{old};
    }
    throw std::invalid_argument("colliding-register: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override {
    return "r(" + std::to_string(value_) + ")";
  }

  void fingerprint_into(adt::FpHasher& h) const override {
    h.mix(0xdead);  // deliberately ignores value_: every state collides
  }

 private:
  std::int64_t value_ = 0;
};

class CollidingRegisterType final : public adt::DataType {
 public:
  [[nodiscard]] std::string name() const override { return "colliding-register"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override {
    static const std::vector<OpSpec> kOps = {
        OpSpec{"write", OpCategory::kPureMutator, true},
        OpSpec{"read", OpCategory::kPureAccessor, false},
        OpSpec{"swap", OpCategory::kMixed, true},
    };
    return kOps;
  }
  [[nodiscard]] std::unique_ptr<adt::ObjectState> make_initial_state() const override {
    return std::make_unique<CollidingState>();
  }
};

TEST(CollisionTest, FingerprintsActuallyCollide) {
  CollidingRegisterType type;
  auto a = type.initial_state();
  auto b = type.initial_state();
  b->apply("write", Value{5});
  EXPECT_NE(a->canonical(), b->canonical());
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
}

/// Pseudo-random concurrent history: 3 processes, overlapping intervals,
/// reads/swaps guessing return values so both verdicts occur.
std::vector<sim::OpRecord> sample_history(unsigned seed, int ops_per_proc) {
  unsigned s = seed;
  const auto next = [&s] {
    s = s * 1664525u + 1013904223u;
    return s >> 8;
  };
  std::vector<sim::OpRecord> ops;
  std::uint64_t uid = 1;
  for (int p = 0; p < 3; ++p) {
    double t = 0.1 * p;
    for (int k = 0; k < ops_per_proc; ++k) {
      sim::OpRecord rec;
      rec.proc = p;
      rec.uid = uid++;
      rec.invoke_real = t;
      rec.response_real = t + 1.5;  // long enough to overlap other processes
      switch (next() % 3) {
        case 0:
          rec.op = "write";
          rec.arg = Value{static_cast<std::int64_t>(next() % 3)};
          rec.ret = Value::nil();
          break;
        case 1:
          rec.op = "read";
          rec.arg = Value::nil();
          rec.ret = Value{static_cast<std::int64_t>(next() % 3)};
          break;
        default:
          rec.op = "swap";
          rec.arg = Value{static_cast<std::int64_t>(next() % 3)};
          rec.ret = Value{static_cast<std::int64_t>(next() % 3)};
          break;
      }
      ops.push_back(std::move(rec));
      t += 0.5 + 0.001 * static_cast<double>(next() % 2000);
    }
  }
  return ops;
}

TEST(CollisionTest, VerdictUnaffectedByTotalCollisions) {
  CollidingRegisterType type;
  int linearizable = 0;
  int rejected = 0;
  for (unsigned seed = 1; seed <= 60; ++seed) {
    const auto ops = sample_history(seed, 4);
    CheckOptions memoized;
    memoized.memoize = true;
    CheckOptions plain;
    plain.memoize = false;
    const CheckResult with_memo = check_linearizability(type, ops, memoized);
    const CheckResult without = check_linearizability(type, ops, plain);

    // Every state shares one fingerprint, so the memo sees nothing but
    // collisions; the canonical guard must keep verdict AND witness exact.
    EXPECT_EQ(with_memo.linearizable, without.linearizable) << "seed " << seed;
    EXPECT_EQ(with_memo.witness, without.witness) << "seed " << seed;
    EXPECT_LE(with_memo.nodes_expanded, without.nodes_expanded) << "seed " << seed;
    (with_memo.linearizable ? linearizable : rejected) += 1;
  }
  // The corpus must exercise both outcomes or the test proves little.
  EXPECT_GT(linearizable, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace lintime::lin
