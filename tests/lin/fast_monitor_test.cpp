// Hand-crafted histories through the lin::check() facade: each case pins
// the fast-path verdict AND cross-validates it against the general
// Wing-Gong checker (allow_fast_path = false) on the same history.

#include "lin/check.hpp"

#include <gtest/gtest.h>

#include "adt/pqueue_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"

namespace lintime::lin {
namespace {

using adt::Value;
using sim::OpRecord;

OpRecord op(sim::ProcId proc, const std::string& name, Value arg, Value ret, double inv,
            double resp) {
  OpRecord r;
  r.proc = proc;
  r.op = name;
  r.arg = std::move(arg);
  r.ret = std::move(ret);
  r.invoke_real = inv;
  r.response_real = resp;
  return r;
}

/// Runs both routes and asserts the fast path was taken and both agree.
bool both_routes(const adt::DataType& type, const std::vector<OpRecord>& h) {
  const auto fast = check(type, h);
  EXPECT_EQ(fast.stats.route, CheckRoute::kFastPath) << fast.stats.fallback_reason;
  FacadeOptions general_only;
  general_only.allow_fast_path = false;
  const auto general = check(type, h, general_only);
  EXPECT_EQ(general.stats.route, CheckRoute::kGeneral);
  EXPECT_EQ(fast.result.linearizable, general.result.linearizable)
      << "fast path and general checker disagree";
  return fast.result.linearizable;
}

// --- register --------------------------------------------------------------

TEST(FastMonitorTest, RegisterConcurrentReadDuringWrite) {
  adt::RegisterType reg;
  EXPECT_TRUE(both_routes(reg, {
                                   op(0, "write", 1, Value::nil(), 0, 2),
                                   op(1, "read", Value::nil(), 1, 0.5, 1.5),
                                   op(2, "read", Value::nil(), 0, 0.6, 1.6),
                               }));
}

TEST(FastMonitorTest, RegisterStaleReadAfterWrite) {
  adt::RegisterType reg;
  // read -> 0 strictly after the write of 1 completed: the initial cluster
  // would have to follow the write's cluster.
  EXPECT_FALSE(both_routes(reg, {
                                    op(0, "write", 1, Value::nil(), 0, 1),
                                    op(1, "read", Value::nil(), 0, 2, 3),
                                }));
}

TEST(FastMonitorTest, RegisterTwoWriteCycle) {
  adt::RegisterType reg;
  // Reads force write(1) < write(2) and write(2) < write(1) simultaneously.
  EXPECT_FALSE(both_routes(reg, {
                                    op(0, "write", 1, Value::nil(), 0, 1),
                                    op(1, "write", 2, Value::nil(), 0.2, 1.2),
                                    op(2, "read", Value::nil(), 1, 2, 3),
                                    op(3, "read", Value::nil(), 2, 4, 5),
                                    op(2, "read", Value::nil(), 1, 6, 7),
                                }));
}

TEST(FastMonitorTest, RegisterReadBeforeOwnWrite) {
  adt::RegisterType reg;
  EXPECT_FALSE(both_routes(reg, {
                                    op(0, "read", Value::nil(), 5, 0, 1),
                                    op(1, "write", 5, Value::nil(), 2, 3),
                                }));
}

// --- queue -----------------------------------------------------------------

TEST(FastMonitorTest, QueueFifoRespected) {
  adt::QueueType q;
  EXPECT_TRUE(both_routes(q, {
                                 op(0, "enqueue", 1, Value::nil(), 0, 2),
                                 op(1, "enqueue", 2, Value::nil(), 1, 3),
                                 op(0, "dequeue", Value::nil(), 1, 3, 5),
                                 op(1, "dequeue", Value::nil(), 2, 4, 6),
                             }));
}

TEST(FastMonitorTest, QueueForcedFifoInversion) {
  adt::QueueType q;
  EXPECT_FALSE(both_routes(q, {
                                  op(0, "enqueue", 1, Value::nil(), 0, 1),
                                  op(0, "enqueue", 2, Value::nil(), 2, 3),
                                  op(1, "dequeue", Value::nil(), 2, 4, 5),
                                  op(1, "dequeue", Value::nil(), 1, 6, 7),
                              }));
}

TEST(FastMonitorTest, QueueDequeueBeforeEnqueue) {
  adt::QueueType q;
  EXPECT_FALSE(both_routes(q, {
                                  op(0, "dequeue", Value::nil(), 1, 0, 1),
                                  op(1, "enqueue", 1, Value::nil(), 2, 3),
                              }));
}

TEST(FastMonitorTest, QueueStuckValueViolation) {
  adt::QueueType q;
  // 1 is enqueued and never dequeued, fully before enqueue(2); dequeuing 2
  // would have to skip over 1.
  EXPECT_FALSE(both_routes(q, {
                                  op(0, "enqueue", 1, Value::nil(), 0, 1),
                                  op(0, "enqueue", 2, Value::nil(), 2, 3),
                                  op(1, "dequeue", Value::nil(), 2, 4, 5),
                              }));
}

TEST(FastMonitorTest, QueueEmptyDequeueLegalBetweenValues) {
  adt::QueueType q;
  EXPECT_TRUE(both_routes(q, {
                                 op(0, "enqueue", 1, Value::nil(), 0, 1),
                                 op(0, "dequeue", Value::nil(), 1, 2, 3),
                                 op(1, "dequeue", Value::nil(), Value::nil(), 4, 5),
                                 op(0, "enqueue", 2, Value::nil(), 6, 7),
                                 op(1, "dequeue", Value::nil(), 2, 8, 9),
                             }));
}

TEST(FastMonitorTest, QueueEmptyDequeueInsideCertainPresence) {
  adt::QueueType q;
  // 1 is certainly present on [1, 6] and the empty dequeue sits inside.
  EXPECT_FALSE(both_routes(q, {
                                  op(0, "enqueue", 1, Value::nil(), 0, 1),
                                  op(1, "dequeue", Value::nil(), Value::nil(), 2, 3),
                                  op(0, "dequeue", Value::nil(), 1, 6, 7),
                              }));
}

TEST(FastMonitorTest, QueueEmptyDequeueAtTouchingBoundaryIsLegal) {
  adt::QueueType q;
  // Presence windows (1, 4) and (4, 8) touch at exactly 4: the order
  // deq(1) . empty . enq(2) is still consistent (neither boundary pair is
  // strictly ordered), so the empty dequeue is legal and the union must not
  // have merged the windows.
  EXPECT_TRUE(both_routes(q, {
                                 op(0, "enqueue", 1, Value::nil(), 0, 1),
                                 op(0, "dequeue", Value::nil(), 1, 4, 5),
                                 op(2, "dequeue", Value::nil(), Value::nil(), 3.9, 4.1),
                                 op(1, "enqueue", 2, Value::nil(), 3.6, 4),
                                 op(1, "dequeue", Value::nil(), 2, 8, 9),
                             }));
}

// --- stack -----------------------------------------------------------------

TEST(FastMonitorTest, StackLifoRespected) {
  adt::StackType s;
  EXPECT_TRUE(both_routes(s, {
                                 op(0, "push", 1, Value::nil(), 0, 1),
                                 op(0, "push", 2, Value::nil(), 2, 3),
                                 op(1, "pop", Value::nil(), 2, 4, 5),
                                 op(1, "pop", Value::nil(), 1, 6, 7),
                             }));
}

TEST(FastMonitorTest, StackForcedLifoInversion) {
  adt::StackType s;
  // push(1) < push(2) < pop(1) < pop(2): 2 certainly sits above 1.
  EXPECT_FALSE(both_routes(s, {
                                  op(0, "push", 1, Value::nil(), 0, 1),
                                  op(0, "push", 2, Value::nil(), 2, 3),
                                  op(1, "pop", Value::nil(), 1, 4, 5),
                                  op(1, "pop", Value::nil(), 2, 6, 7),
                              }));
}

TEST(FastMonitorTest, StackUnpoppedBlocker) {
  adt::StackType s;
  // Same, but 2 is never popped: still a forced inversion.
  EXPECT_FALSE(both_routes(s, {
                                  op(0, "push", 1, Value::nil(), 0, 1),
                                  op(0, "push", 2, Value::nil(), 2, 3),
                                  op(1, "pop", Value::nil(), 1, 4, 5),
                              }));
}

TEST(FastMonitorTest, StackOverlappingPushesEitherOrder) {
  adt::StackType s;
  EXPECT_TRUE(both_routes(s, {
                                 op(0, "push", 1, Value::nil(), 0, 2),
                                 op(1, "push", 2, Value::nil(), 1, 3),
                                 op(0, "pop", Value::nil(), 1, 4, 5),
                                 op(1, "pop", Value::nil(), 2, 6, 7),
                             }));
}

TEST(FastMonitorTest, StackEmptyPopInsideCertainPresence) {
  adt::StackType s;
  EXPECT_FALSE(both_routes(s, {
                                  op(0, "push", 1, Value::nil(), 0, 1),
                                  op(1, "pop", Value::nil(), Value::nil(), 2, 3),
                                  op(0, "pop", Value::nil(), 1, 6, 7),
                              }));
}

// --- set -------------------------------------------------------------------

TEST(FastMonitorTest, SetAddThenContains) {
  adt::SetType s;
  EXPECT_TRUE(both_routes(s, {
                                 op(0, "add", 1, Value::nil(), 0, 1),
                                 op(1, "contains", 1, Value{1}, 2, 3),
                                 op(1, "contains", 2, Value{0}, 4, 5),
                             }));
}

TEST(FastMonitorTest, SetContainsTrueBeforeAdd) {
  adt::SetType s;
  EXPECT_FALSE(both_routes(s, {
                                  op(0, "contains", 1, Value{1}, 0, 1),
                                  op(1, "add", 1, Value::nil(), 2, 3),
                              }));
}

TEST(FastMonitorTest, SetContainsFalseAfterAdd) {
  adt::SetType s;
  EXPECT_FALSE(both_routes(s, {
                                  op(0, "add", 1, Value::nil(), 0, 1),
                                  op(1, "contains", 1, Value{0}, 2, 3),
                              }));
}

TEST(FastMonitorTest, SetContainsTrueWithoutAdd) {
  adt::SetType s;
  EXPECT_FALSE(both_routes(s, {
                                  op(0, "contains", 9, Value{1}, 0, 1),
                              }));
}

TEST(FastMonitorTest, SetConcurrentReadsBracketTheAdd) {
  adt::SetType s;
  // Both observations overlap the add: either can linearize on its side.
  EXPECT_TRUE(both_routes(s, {
                                 op(0, "add", 1, Value::nil(), 1, 4),
                                 op(1, "contains", 1, Value{0}, 0, 2),
                                 op(2, "contains", 1, Value{1}, 3, 5),
                             }));
}

// --- priority queue --------------------------------------------------------

TEST(FastMonitorTest, PQueueExtractsInValueOrder) {
  adt::PriorityQueueType pq;
  EXPECT_TRUE(both_routes(pq, {
                                  op(0, "insert", 2, Value::nil(), 0, 1),
                                  op(0, "insert", 1, Value::nil(), 2, 3),
                                  op(1, "extract_min", Value::nil(), 1, 4, 5),
                                  op(1, "extract_min", Value::nil(), 2, 6, 7),
                              }));
}

TEST(FastMonitorTest, PQueueExtractCoveredBySmallerValue) {
  adt::PriorityQueueType pq;
  // 1 is certainly present for the whole extract_min -> 2 interval.
  EXPECT_FALSE(both_routes(pq, {
                                   op(0, "insert", 1, Value::nil(), 0, 1),
                                   op(0, "insert", 2, Value::nil(), 2, 3),
                                   op(1, "extract_min", Value::nil(), 2, 4, 5),
                                   op(1, "extract_min", Value::nil(), 1, 6, 7),
                               }));
}

TEST(FastMonitorTest, PQueueConcurrentSmallerValueAllowsEitherOrder) {
  adt::PriorityQueueType pq;
  // insert(1) overlaps the extract -> 2: extraction may linearize first.
  EXPECT_TRUE(both_routes(pq, {
                                  op(0, "insert", 2, Value::nil(), 0, 1),
                                  op(1, "insert", 1, Value::nil(), 2, 5),
                                  op(2, "extract_min", Value::nil(), 2, 3, 4),
                                  op(2, "extract_min", Value::nil(), 1, 6, 7),
                              }));
}

TEST(FastMonitorTest, PQueueEmptyExtractInsideCertainPresence) {
  adt::PriorityQueueType pq;
  EXPECT_FALSE(both_routes(pq, {
                                   op(0, "insert", 1, Value::nil(), 0, 1),
                                   op(1, "extract_min", Value::nil(), Value::nil(), 2, 3),
                                   op(0, "extract_min", Value::nil(), 1, 6, 7),
                               }));
}

TEST(FastMonitorTest, PQueueExtractBeforeInsert) {
  adt::PriorityQueueType pq;
  EXPECT_FALSE(both_routes(pq, {
                                   op(0, "extract_min", Value::nil(), 1, 0, 1),
                                   op(1, "insert", 1, Value::nil(), 2, 3),
                               }));
}

// --- facade routing --------------------------------------------------------

TEST(FastMonitorTest, RequireWitnessForcesGeneralRoute) {
  adt::QueueType q;
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(1, "dequeue", Value::nil(), 1, 2, 3),
  };
  FacadeOptions options;
  options.require_witness = true;
  const auto report = check(q, h, options);
  EXPECT_EQ(report.stats.route, CheckRoute::kGeneral);
  EXPECT_TRUE(report.result.linearizable);
  EXPECT_EQ(report.result.witness.size(), h.size());
}

TEST(FastMonitorTest, AmbiguousHistoryRoutesToGeneral) {
  adt::QueueType q;
  // Duplicate enqueued value: outside the monitor's precondition.
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(1, "enqueue", 1, Value::nil(), 2, 3),
      op(0, "dequeue", Value::nil(), 1, 4, 5),
      op(1, "dequeue", Value::nil(), 1, 6, 7),
  };
  const auto report = check(q, h);
  EXPECT_EQ(report.stats.route, CheckRoute::kGeneral);
  EXPECT_FALSE(report.stats.fallback_reason.empty());
  EXPECT_TRUE(report.result.linearizable);
}

}  // namespace
}  // namespace lintime::lin
