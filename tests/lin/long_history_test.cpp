// 10^6-operation fast-path runs: the scale the log-linear monitors exist
// for, far beyond what the general checker could ever search.  Registered
// under the `long_history` ctest configuration only (bench-smoke CI runs
// `ctest -C long_history`), so the default test pass stays fast.

#include <gtest/gtest.h>

#include "adt/pqueue_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "lin/check.hpp"
#include "lin/fast/history_gen.hpp"

namespace lintime::lin {
namespace {

constexpr std::size_t kMillionOps = 1'000'000;

void run_long(const adt::DataType& type) {
  fast::GenOptions gen;
  gen.procs = 8;
  gen.total_ops = kMillionOps;
  gen.seed = 42;
  auto ops = fast::generate_unambiguous(type, gen);

  const auto report = check(type, ops);
  ASSERT_EQ(report.stats.route, CheckRoute::kFastPath) << report.stats.fallback_reason;
  EXPECT_TRUE(report.result.linearizable);

  // One impossible observation at the end must flip the verdict at the same
  // scale.
  fast::append_impossible_observation(type, ops);
  const auto bad = check(type, ops);
  ASSERT_EQ(bad.stats.route, CheckRoute::kFastPath);
  EXPECT_FALSE(bad.result.linearizable);
}

TEST(LongHistoryTest, MillionOpQueue) { run_long(adt::QueueType{}); }
TEST(LongHistoryTest, MillionOpStack) { run_long(adt::StackType{}); }
TEST(LongHistoryTest, MillionOpRegister) { run_long(adt::RegisterType{}); }
TEST(LongHistoryTest, MillionOpSet) { run_long(adt::SetType{}); }
TEST(LongHistoryTest, MillionOpPQueue) { run_long(adt::PriorityQueueType{}); }

}  // namespace
}  // namespace lintime::lin
