// Tests for the non-deterministic linearizability checker (the Section 6.2
// relaxation): histories only explainable by a non-minimal take are accepted
// against the spec while the deterministic resolution rejects them, and
// genuinely impossible histories are still rejected.

#include "lin/nondet_checker.hpp"

#include <gtest/gtest.h>

#include "adt/pool_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::lin {
namespace {

using adt::Value;
using sim::OpRecord;

OpRecord op(sim::ProcId proc, const std::string& name, Value arg, Value ret, double inv,
            double resp, std::uint64_t uid) {
  OpRecord r;
  r.proc = proc;
  r.op = name;
  r.arg = std::move(arg);
  r.ret = std::move(ret);
  r.invoke_real = inv;
  r.response_real = resp;
  r.uid = uid;
  return r;
}

TEST(NondetCheckerTest, EmptyHistory) {
  adt::PoolNondetSpec spec;
  EXPECT_TRUE(check_linearizability_nondet(spec, std::vector<OpRecord>{}).linearizable);
}

TEST(NondetCheckerTest, MinimalTakeAccepted) {
  adt::PoolNondetSpec spec;
  const std::vector<OpRecord> h = {
      op(0, "put", 1, Value::nil(), 0, 1, 1),
      op(0, "put", 2, Value::nil(), 2, 3, 2),
      op(1, "take", Value::nil(), 1, 4, 5, 3),
  };
  EXPECT_TRUE(check_linearizability_nondet(spec, h).linearizable);
}

TEST(NondetCheckerTest, NonMinimalTakeAcceptedBySpecOnly) {
  // take returns 2 while 1 is present: impossible under the min-take
  // deterministic resolution, fine under the spec.
  adt::PoolNondetSpec spec;
  adt::PoolType det;
  const std::vector<OpRecord> h = {
      op(0, "put", 1, Value::nil(), 0, 1, 1),
      op(0, "put", 2, Value::nil(), 2, 3, 2),
      op(1, "take", Value::nil(), 2, 4, 5, 3),
      op(2, "take", Value::nil(), 1, 6, 7, 4),
  };
  EXPECT_TRUE(check_linearizability_nondet(spec, h).linearizable);
  EXPECT_FALSE(check_linearizability(det, h).linearizable);
}

TEST(NondetCheckerTest, TakeOfAbsentElementRejected) {
  adt::PoolNondetSpec spec;
  const std::vector<OpRecord> h = {
      op(0, "put", 1, Value::nil(), 0, 1, 1),
      op(1, "take", Value::nil(), 9, 2, 3, 2),
  };
  EXPECT_FALSE(check_linearizability_nondet(spec, h).linearizable);
}

TEST(NondetCheckerTest, DoubleTakeOfSingleElementRejected) {
  adt::PoolNondetSpec spec;
  const std::vector<OpRecord> h = {
      op(0, "put", 1, Value::nil(), 0, 1, 1),
      op(1, "take", Value::nil(), 1, 2, 3, 2),
      op(2, "take", Value::nil(), 1, 2.5, 3.5, 3),
  };
  EXPECT_FALSE(check_linearizability_nondet(spec, h).linearizable);
}

TEST(NondetCheckerTest, RealTimeOrderStillEnforced) {
  // take completes before put begins: nothing to take yet.
  adt::PoolNondetSpec spec;
  const std::vector<OpRecord> h = {
      op(1, "take", Value::nil(), 1, 0, 1, 1),
      op(0, "put", 1, Value::nil(), 2, 3, 2),
  };
  EXPECT_FALSE(check_linearizability_nondet(spec, h).linearizable);
}

TEST(NondetCheckerTest, StaleSizeAfterPutRejected) {
  adt::PoolNondetSpec spec;
  const std::vector<OpRecord> h = {
      op(0, "put", 1, Value::nil(), 0, 1, 1),
      op(1, "size", Value::nil(), 0, 2, 3, 2),
  };
  EXPECT_FALSE(check_linearizability_nondet(spec, h).linearizable);
}

TEST(NondetCheckerTest, AlgorithmOnePoolRunsSatisfySpec) {
  // End-to-end: Algorithm 1 on the deterministic resolution; runs satisfy
  // the relaxed spec (and the deterministic one).
  adt::PoolType det;
  adt::PoolNondetSpec spec;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    harness::RunSpec run;
    run.params = sim::ModelParams{4, 10.0, 2.0, 1.5};
    run.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, seed);
    run.scripts = harness::random_scripts(det, 4, 4, seed * 13);
    const auto result = harness::execute(det, run);
    EXPECT_TRUE(check_linearizability(det, result.record).linearizable) << seed;
    EXPECT_TRUE(check_linearizability_nondet(spec, result.record).linearizable) << seed;
  }
}

TEST(NondetCheckerTest, BranchingCountedInNodes) {
  // Many concurrent takes from a pool with many elements: the search
  // branches over outcomes but memoization keeps it tractable.
  adt::PoolNondetSpec spec;
  std::vector<OpRecord> h;
  std::uint64_t uid = 1;
  for (int v = 1; v <= 6; ++v) {
    h.push_back(op(0, "put", v, Value::nil(), v, v + 0.5, uid++));
  }
  for (int v = 1; v <= 6; ++v) {
    h.push_back(op(1 + v % 3, "take", Value::nil(), 7 - v, 10, 20, uid++));
  }
  const auto result = check_linearizability_nondet(spec, h);
  EXPECT_TRUE(result.linearizable);
  EXPECT_LT(result.nodes_expanded, 100000u);
}

}  // namespace
}  // namespace lintime::lin
