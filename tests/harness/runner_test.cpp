// Tests for the run-orchestration harness.

#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"

namespace lintime::harness {
namespace {

using adt::Value;

TEST(RunnerTest, LatencyStatsAggregateCorrectly) {
  sim::RunRecord record;
  auto add = [&record](const std::string& op, double inv, double resp) {
    sim::OpRecord r;
    r.op = op;
    r.invoke_real = inv;
    r.response_real = resp;
    record.ops.push_back(r);
  };
  add("read", 0, 2);
  add("read", 10, 16);
  add("write", 0, 1);

  const auto stats = latency_by_op(record);
  EXPECT_EQ(stats.at("read").count, 2u);
  EXPECT_DOUBLE_EQ(stats.at("read").min, 2.0);
  EXPECT_DOUBLE_EQ(stats.at("read").max, 6.0);
  EXPECT_DOUBLE_EQ(stats.at("read").mean, 4.0);
  EXPECT_EQ(stats.at("write").count, 1u);
}

TEST(RunnerTest, IncompleteOpsExcludedFromStats) {
  sim::RunRecord record;
  sim::OpRecord r;
  r.op = "read";
  r.invoke_real = 5;
  r.response_real = -1;
  record.ops.push_back(r);
  EXPECT_TRUE(latency_by_op(record).empty());
}

TEST(RunnerTest, StatsForThrowsOnMissingOp) {
  RunResult result;
  EXPECT_THROW((void)result.stats_for("nope"), std::out_of_range);
  try {
    (void)result.stats_for("frobnicate");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    // The message must name the missing operation so a campaign job that
    // queries the wrong op fails with an actionable error.
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(RunnerTest, ClosedLoopScriptsRunToCompletion) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.scripts = {
      {{"enqueue", Value{1}}, {"enqueue", Value{2}}, {"dequeue", Value::nil()}},
      {{"peek", Value::nil()}},
      {},
  };
  const auto result = harness::execute(queue, spec);
  EXPECT_EQ(result.record.ops.size(), 4u);
  for (const auto& op : result.record.ops) EXPECT_TRUE(op.complete());
}

TEST(RunnerTest, ScriptGapSpacesInvocations) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.scripts = {{{"enqueue", Value{1}}, {"enqueue", Value{2}}}, {}, {}};
  spec.script_gap = 5.0;
  const auto result = harness::execute(queue, spec);
  ASSERT_EQ(result.record.ops.size(), 2u);
  EXPECT_DOUBLE_EQ(result.record.ops[1].invoke_real,
                   result.record.ops[0].response_real + 5.0);
}

TEST(RunnerTest, ScriptSizeMismatchThrows) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.scripts = {{{"enqueue", Value{1}}}};  // only 1 script for n=3
  EXPECT_THROW((void)harness::execute(queue, spec), std::invalid_argument);
}

TEST(RunnerTest, RandomScriptsDeterministicPerSeed) {
  adt::QueueType queue;
  const auto a = random_scripts(queue, 3, 10, 42);
  const auto b = random_scripts(queue, 3, 10, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].size(), b[p].size());
    for (std::size_t i = 0; i < a[p].size(); ++i) {
      EXPECT_EQ(a[p][i].op, b[p][i].op);
      EXPECT_EQ(a[p][i].arg, b[p][i].arg);
    }
  }
}

TEST(RunnerTest, RandomScriptsUseOnlyValidOps) {
  adt::RegisterType reg;
  const auto scripts = random_scripts(reg, 2, 20, 7);
  for (const auto& script : scripts) {
    for (const auto& s : script) {
      EXPECT_NO_THROW((void)reg.spec(s.op));
    }
  }
}

TEST(RunnerTest, FinalStatesReportedPerReplica) {
  adt::RegisterType reg;
  RunSpec spec;
  spec.params = sim::ModelParams{4, 10.0, 2.0, 1.0};
  spec.calls = {Call{0.0, 0, "write", Value{3}}};
  const auto result = harness::execute(reg, spec);
  ASSERT_EQ(result.final_states.size(), 4u);
  for (const auto& s : result.final_states) EXPECT_EQ(s, "reg:3");
}

TEST(RunnerTest, AlgoKindNames) {
  EXPECT_STREQ(to_string(AlgoKind::kAlgorithmOne), "algorithm1");
  EXPECT_STREQ(to_string(AlgoKind::kCentralized), "centralized");
  EXPECT_STREQ(to_string(AlgoKind::kAllOop), "all-oop");
  EXPECT_STREQ(to_string(AlgoKind::kZeroWait), "zero-wait");
}

}  // namespace
}  // namespace lintime::harness
