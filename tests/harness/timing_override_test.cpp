// Tests for RunSpec::timing, the explicit timer-constant override used to
// run unsafe Algorithm 1 variants through the harness.

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::harness {
namespace {

using adt::Value;

sim::ModelParams params3() { return sim::ModelParams{3, 10.0, 2.0, 1.5}; }

TEST(TimingOverrideTest, CustomAopLatencyIsApplied) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params3();
  core::TimingPolicy timing = core::TimingPolicy::standard(spec.params, 0.0);
  timing.aop_respond = 3.25;
  spec.timing = timing;
  spec.calls = {Call{0.0, 0, "peek", Value::nil()}};
  const auto result = execute(queue, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("peek").max, 3.25);
}

TEST(TimingOverrideTest, UnsafeOopLatencyBreaksConcurrentDequeues) {
  // Through the harness: shrink the OOP path below d and race two dequeues.
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params3();
  core::TimingPolicy timing = core::TimingPolicy::standard(spec.params, 0.0);
  timing.execute_delay = 1.0;  // |OOP| = (d-u) + 1 = 9 < d
  spec.timing = timing;
  spec.scripts = {{{"enqueue", Value{7}}}, {}, {}};
  spec.calls = {
      Call{40.0, 1, "dequeue", Value::nil()},
      Call{40.0, 2, "dequeue", Value::nil()},
  };
  const auto result = execute(queue, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{7});
  EXPECT_EQ(result.record.ops[2].ret, Value{7});  // both claim the head
  EXPECT_FALSE(lin::check_linearizability(queue, result.record).linearizable);
}

TEST(TimingOverrideTest, DefaultDerivesFromX) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params3();
  spec.X = 4.0;
  spec.calls = {Call{0.0, 0, "peek", Value::nil()}};
  const auto result = execute(queue, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("peek").max, spec.params.d - 4.0);
}

TEST(TimingOverrideTest, BaselinesIgnoreInvalidXWhenTimingUnused) {
  // A centralized run must not validate Algorithm-1 timing it never uses.
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params3();
  spec.algo = AlgoKind::kCentralized;
  spec.X = 9999.0;  // would be rejected by TimingPolicy::standard
  spec.calls = {Call{0.0, 1, "enqueue", Value{1}}};
  EXPECT_NO_THROW((void)execute(queue, spec));
}

}  // namespace
}  // namespace lintime::harness
