// Tests for Construction 1 (the paper's explicit linearization), validating
// Lemmas 5, 6 and 7 directly on Algorithm 1 runs, including a parameterized
// sweep where the construction must agree with the search-based checker.

#include "core/construction.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/tree_type.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "sim/world.hpp"

namespace lintime::core {
namespace {

using adt::Value;

struct RunWithReplicas {
  sim::RunRecord record;
  std::vector<const AlgorithmOneProcess*> replicas;
  // Keep the world alive so replica pointers stay valid.
  std::shared_ptr<sim::World> world;
};

/// Runs Algorithm 1 on a workload and returns record plus replica handles.
RunWithReplicas run(const adt::DataType& type, const sim::ModelParams& params, double X,
                    const std::vector<harness::Call>& calls,
                    std::shared_ptr<sim::DelayModel> delays = nullptr,
                    std::vector<double> offsets = {}) {
  RunWithReplicas out;
  sim::WorldConfig config;
  config.params = params;
  config.delays = std::move(delays);
  config.clock_offsets = std::move(offsets);
  std::vector<const AlgorithmOneProcess*>* replicas = &out.replicas;
  out.world = std::make_shared<sim::World>(config, [&](sim::ProcId) {
    auto p = std::make_unique<AlgorithmOneProcess>(type, TimingPolicy::standard(params, X));
    replicas->push_back(p.get());
    return p;
  });
  for (const auto& call : calls) {
    out.world->invoke_at(call.when, call.proc, call.op, call.arg);
  }
  out.world->run();
  out.record = out.world->record();
  return out;
}

sim::ModelParams params4() { return sim::ModelParams{4, 10.0, 2.0, 1.5}; }

TEST(ConstructionTest, EmptyRunIsValid) {
  adt::QueueType queue;
  const auto r = run(queue, params4(), 0.0, {});
  const auto c = build_construction(queue, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  EXPECT_TRUE(c.pi.empty());
}

TEST(ConstructionTest, SimpleWriteReadSequence) {
  adt::RegisterType reg;
  const auto r = run(reg, params4(), 0.0,
                     {{0.0, 0, "write", Value{5}}, {40.0, 1, "read", Value::nil()}});
  const auto c = build_construction(reg, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  ASSERT_EQ(c.pi.size(), 2u);
  EXPECT_EQ(c.pi[0].op, "write");
  EXPECT_EQ(c.pi[1].op, "read");
  EXPECT_EQ(c.pi[1].ret, Value{5});
}

TEST(ConstructionTest, ConcurrentMutatorsOrderedByTimestamp) {
  adt::QueueType queue;
  const auto r = run(queue, params4(), 0.0,
                     {{0.0, 0, "enqueue", Value{1}},
                      {0.0, 1, "enqueue", Value{2}},
                      {0.0, 2, "enqueue", Value{3}},
                      {50.0, 3, "dequeue", Value::nil()}});
  const auto c = build_construction(queue, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  // Equal clocks: tie broken by process id.
  EXPECT_EQ(c.pi[0].arg, Value{1});
  EXPECT_EQ(c.pi[1].arg, Value{2});
  EXPECT_EQ(c.pi[2].arg, Value{3});
}

TEST(ConstructionTest, AccessorPlacedAfterSeenMutators) {
  adt::QueueType queue;
  // The peek at p1 is invoked long after the enqueue completes, so it must
  // be placed after the enqueue and return its value.
  const auto r = run(queue, params4(), 0.0,
                     {{0.0, 0, "enqueue", Value{9}}, {50.0, 1, "peek", Value::nil()}});
  const auto c = build_construction(queue, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  ASSERT_EQ(c.pi.size(), 2u);
  EXPECT_EQ(c.pi[1].op, "peek");
  EXPECT_EQ(c.pi[1].ret, Value{9});
}

TEST(ConstructionTest, EarlyAccessorPlacedBeforeMutators) {
  adt::QueueType queue;
  // peek (invoked at 0, responds at d = 10) misses the enqueue invoked at 5
  // whose announcement reaches p1 only at 15: it returns nil and the
  // construction places it before the enqueue.
  const auto r = run(queue, params4(), 0.0,
                     {{0.0, 1, "peek", Value::nil()}, {5.0, 0, "enqueue", Value{9}}});
  const auto c = build_construction(queue, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  ASSERT_EQ(c.pi.size(), 2u);
  EXPECT_EQ(c.pi[0].op, "peek");
  EXPECT_EQ(c.pi[0].ret, Value::nil());
}

TEST(ConstructionTest, SimultaneousAccessorSeesTimestampSmallerMutator) {
  adt::QueueType queue;
  // Both invoked at 0: the enqueue's announcement arrives at p1 exactly when
  // the peek's respond timer fires; receipt is processed first (the model's
  // boundary rule), the enqueue has the smaller timestamp, so the peek
  // drains it and returns 9.
  const auto r = run(queue, params4(), 0.0,
                     {{0.0, 1, "peek", Value::nil()}, {0.0, 0, "enqueue", Value{9}}});
  const auto c = build_construction(queue, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  ASSERT_EQ(c.pi.size(), 2u);
  EXPECT_EQ(c.pi[0].op, "enqueue");
  EXPECT_EQ(c.pi[1].ret, Value{9});
}

TEST(ConstructionTest, AdjacentAccessorsSortedByTimestamp) {
  adt::RegisterType reg;
  const auto r = run(reg, params4(), 0.0,
                     {{0.0, 0, "read", Value::nil()},
                      {1.0, 1, "read", Value::nil()},
                      {2.0, 2, "read", Value::nil()}});
  const auto c = build_construction(reg, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  EXPECT_EQ(c.pi.size(), 3u);
}

class ConstructionSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ConstructionSweep, AgreesWithSearchChecker) {
  const auto [x_fraction, seed] = GetParam();
  adt::QueueType queue;
  const auto params = params4();
  const double X = x_fraction * (params.d - params.eps);

  // Random open-loop workload with spacing that admits one pending op per
  // process (worst latency is d+eps).
  std::vector<harness::Call> calls;
  unsigned rng = static_cast<unsigned>(seed) * 2654435761u + 17;
  auto next = [&rng] {
    rng = rng * 1664525u + 1013904223u;
    return rng >> 8;
  };
  const char* ops[] = {"enqueue", "dequeue", "peek"};
  for (int round = 0; round < 5; ++round) {
    for (int p = 0; p < params.n; ++p) {
      const char* op = ops[next() % 3];
      calls.push_back({round * 20.0 + (next() % 100) / 20.0, p, op,
                       std::string(op) == "enqueue" ? Value{static_cast<int>(next() % 5)}
                                                    : Value::nil()});
    }
  }
  const auto offsets = std::vector<double>{0.7, -0.7, 0.3, -0.3};
  const auto delays =
      std::make_shared<sim::UniformRandomDelay>(params.min_delay(), params.d,
                                                static_cast<std::uint64_t>(seed));
  const auto r = run(queue, params, X, calls, delays, offsets);

  const auto c = build_construction(queue, r.replicas, r.record);
  EXPECT_TRUE(c.valid()) << c.details;
  // And the search-based checker agrees the run is linearizable.
  EXPECT_TRUE(lin::check_linearizability(queue, r.record).linearizable);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConstructionSweep,
                         ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                                            ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace lintime::core
