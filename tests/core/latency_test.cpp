// Lemma 4's exact response times, parameterized over the tradeoff X:
//   |AOP| = d - X,  |MOP| = X + eps,  |OOP| = d + eps (worst case; may
// complete early when another instance's execute timer drains it first).

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "harness/runner.hpp"

namespace lintime::core {
namespace {

using adt::Value;
using harness::Call;
using harness::RunSpec;

constexpr double kTol = 1e-9;

class LatencyTest : public ::testing::TestWithParam<double> {
 protected:
  sim::ModelParams params() const { return sim::ModelParams{4, 10.0, 2.0, 1.5}; }
  double X() const { return GetParam(); }
};

TEST_P(LatencyTest, PureAccessorTakesExactlyDMinusX) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params();
  spec.X = X();
  spec.calls = {Call{5.0, 1, "peek", Value::nil()}};
  const auto result = harness::execute(queue, spec);
  const auto& stats = result.stats_for("peek");
  EXPECT_NEAR(stats.min, spec.params.d - X(), kTol);
  EXPECT_NEAR(stats.max, spec.params.d - X(), kTol);
}

TEST_P(LatencyTest, PureMutatorTakesExactlyXPlusEps) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params();
  spec.X = X();
  spec.calls = {Call{5.0, 2, "enqueue", Value{1}}};
  const auto result = harness::execute(queue, spec);
  const auto& stats = result.stats_for("enqueue");
  EXPECT_NEAR(stats.min, X() + spec.params.eps, kTol);
  EXPECT_NEAR(stats.max, X() + spec.params.eps, kTol);
}

TEST_P(LatencyTest, MixedOpTakesExactlyDPlusEpsWhenSolo) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params();
  spec.X = X();
  spec.calls = {Call{5.0, 0, "dequeue", Value::nil()}};
  const auto result = harness::execute(queue, spec);
  const auto& stats = result.stats_for("dequeue");
  EXPECT_NEAR(stats.min, spec.params.d + spec.params.eps, kTol);
  EXPECT_NEAR(stats.max, spec.params.d + spec.params.eps, kTol);
}

TEST_P(LatencyTest, LatenciesIndependentOfActualMessageDelays) {
  // The response times are timer-driven; the adversary cannot slow them.
  adt::RmwRegisterType reg;
  for (const double delay : {8.0, 9.0, 10.0}) {
    RunSpec spec;
    spec.params = params();
    spec.X = X();
    spec.delays = std::make_shared<sim::ConstantDelay>(delay);
    spec.calls = {
        Call{0.0, 0, "write", Value{1}},
        Call{30.0, 1, "read", Value::nil()},
        Call{60.0, 2, "fetch_add", Value{1}},
    };
    const auto result = harness::execute(reg, spec);
    EXPECT_NEAR(result.stats_for("write").max, X() + spec.params.eps, kTol);
    EXPECT_NEAR(result.stats_for("read").max, spec.params.d - X(), kTol);
    EXPECT_NEAR(result.stats_for("fetch_add").max, spec.params.d + spec.params.eps, kTol);
  }
}

TEST_P(LatencyTest, MixedOpNeverExceedsDPlusEps) {
  // Under concurrency an OOP may respond early (drained by another
  // instance's execute timer) but never later than d + eps.
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params();
  spec.X = X();
  const double e = spec.params.eps;
  spec.clock_offsets = {e / 2, -e / 2, 0.0, 0.0};
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{0.0, 1, "dequeue", Value::nil()},
      Call{1.0, 2, "dequeue", Value::nil()},
      Call{2.0, 3, "enqueue", Value{2}},
  };
  const auto result = harness::execute(queue, spec);
  EXPECT_LE(result.stats_for("dequeue").max, spec.params.d + spec.params.eps + kTol);
}

INSTANTIATE_TEST_SUITE_P(XSweep, LatencyTest,
                         ::testing::Values(0.0, 1.0, 2.5, 5.0, 8.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           std::string name = "X" + std::to_string(info.param);
                           for (auto& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace lintime::core
