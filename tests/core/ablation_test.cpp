// Ablation tests for the design decisions DESIGN.md calls out: each shows
// that removing one mechanism breaks Algorithm 1 on a concrete admissible
// schedule (while the intact algorithm handles the same schedule), so the
// mechanism is load-bearing, not incidental.

#include <gtest/gtest.h>

#include <memory>

#include "adt/queue_type.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "lin/checker.hpp"
#include "sim/world.hpp"

namespace lintime::core {
namespace {

using adt::Value;

// ---------------------------------------------------------------------------
// Ablation 1: deliveries must be processed before timers at equal times.
//
// Schedule (dyadic constants so the boundary tie is exact): eps = 1.5,
// offsets (-eps, 0, 0); dequeue at p1 at t = 50, dequeue at p0 at t + eps.
// Both timestamps are (50, .) -- p0's is smaller by process id -- and p0's
// announcement reaches p1 at 51.5 + 10 = 61.5, the same instant p1's own
// execute timer fires (50 + (d-u) + (u+eps) = 61.5).  With the model's rule,
// p1 first learns of p0's dequeue and both replicas agree p0's goes first;
// with timers-first, p1 dequeues the head it no longer owns.
// ---------------------------------------------------------------------------

sim::RunRecord run_boundary_schedule(bool timers_first) {
  adt::QueueType queue;
  sim::WorldConfig config;
  config.params = sim::ModelParams{3, 10.0, 2.0, 1.5};
  config.clock_offsets = {-1.5, 0.0, 0.0};
  config.timers_before_deliveries = timers_first;

  sim::World world(config, [&](sim::ProcId) {
    return std::make_unique<AlgorithmOneProcess>(queue,
                                                 TimingPolicy::standard(config.params, 0.0));
  });
  world.invoke_at(0.0, 2, "enqueue", Value{7});  // seed the head
  world.invoke_at(50.0, 1, "dequeue", Value::nil());
  world.invoke_at(51.5, 0, "dequeue", Value::nil());
  world.run();
  return world.record();
}

TEST(TieBreakAblation, ModelRuleKeepsBoundaryTieLinearizable) {
  adt::QueueType queue;
  const auto record = run_boundary_schedule(/*timers_first=*/false);
  EXPECT_TRUE(lin::check_linearizability(queue, record).linearizable);
  // Exactly one dequeue returns the head.
  int sevens = 0;
  for (const auto& op : record.ops) {
    if (op.op == "dequeue" && op.ret == Value{7}) ++sevens;
  }
  EXPECT_EQ(sevens, 1);
}

TEST(TieBreakAblation, TimersFirstDoubleDeliversTheHead) {
  adt::QueueType queue;
  const auto record = run_boundary_schedule(/*timers_first=*/true);
  int sevens = 0;
  for (const auto& op : record.ops) {
    if (op.op == "dequeue" && op.ret == Value{7}) ++sevens;
  }
  EXPECT_EQ(sevens, 2);  // both dequeues claim the head
  EXPECT_FALSE(lin::check_linearizability(queue, record).linearizable);
}

// ---------------------------------------------------------------------------
// Ablation 2: the AOP timestamp back-date of Algorithm 1's line 2.
//
// Without back-dating, an accessor's timestamp covers mutators invoked up to
// X before it, which it may execute *selectively* (whichever announcements
// happened to arrive): here the peek at p0 sees enqueue(2) (min delay from
// p2) but misses the timestamp-smaller enqueue(1) (max delay from p1),
// returning head 2 while every replica converges on order 1, 2.
// ---------------------------------------------------------------------------

sim::RunRecord run_backdate_schedule(double backdate) {
  adt::QueueType queue;
  sim::WorldConfig config;
  config.params = sim::ModelParams{3, 10.0, 2.0, 1.5};
  config.delays = std::make_shared<sim::FunctionDelay>(
      [](sim::ProcId src, sim::ProcId, sim::Time, std::uint64_t) {
        return src == 1 ? 10.0 : 8.0;  // p1's announcements are slow
      });

  TimingPolicy timing = TimingPolicy::standard(config.params, /*X=*/2.0);
  timing.aop_backdate = backdate;  // 2.0 = line 2; 0.0 = ablated

  sim::World world(config, [&](sim::ProcId) {
    return std::make_unique<AlgorithmOneProcess>(queue, timing);
  });
  const double t = 50.0;
  world.invoke_at(t - 1.0, 1, "enqueue", Value{1});  // ts 49, arrives p0 at 59
  world.invoke_at(t - 0.5, 2, "enqueue", Value{2});  // ts 49.5, arrives p0 at 57.5
  world.invoke_at(t, 0, "peek", Value::nil());       // drains at t + d - X = 58
  // Probe dequeues at two different replicas: without the back-date, p0's
  // replica diverges (it executed enqueue(2) before enqueue(1) through the
  // accessor's drain), and both dequeues return the same element.
  world.invoke_at(90.0, 1, "dequeue", Value::nil());
  world.invoke_at(92.0, 0, "dequeue", Value::nil());
  world.run();
  return world.record();
}

TEST(BackdateAblation, LineTwoBackdateKeepsAccessorConsistent) {
  adt::QueueType queue;
  const auto record = run_backdate_schedule(/*backdate=*/2.0);
  // Back-dated ts = 48 < both enqueues: the peek sees neither and returns
  // nil -- consistent (it is concurrent with both).
  EXPECT_EQ(record.ops[2].ret, Value::nil());
  EXPECT_TRUE(lin::check_linearizability(queue, record).linearizable);
}

TEST(BackdateAblation, NoBackdateYieldsTornReadAndDivergence) {
  adt::QueueType queue;
  const auto record = run_backdate_schedule(/*backdate=*/0.0);
  // The peek saw enqueue(2) but not the smaller-timestamped enqueue(1),
  // executing the mutators out of timestamp order on p0's replica...
  EXPECT_EQ(record.ops[2].ret, Value{2});
  // ...so the two probe dequeues (at p1 and at the diverged p0) both claim
  // element 1 -- double delivery, and no linearization exists.
  EXPECT_EQ(record.ops[3].ret, Value{1});
  EXPECT_EQ(record.ops[4].ret, Value{1});
  EXPECT_FALSE(lin::check_linearizability(queue, record).linearizable);
}

}  // namespace
}  // namespace lintime::core
