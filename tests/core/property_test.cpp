// Property sweep: for every shipped data type, across process counts, X
// values, clock-skew patterns, delay models and seeds, every complete run of
// Algorithm 1 is linearizable (checked by the Wing-Gong checker) and all
// replicas converge.  This is the executable counterpart of Theorem 6.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adt/counter_type.hpp"
#include "adt/deque_type.hpp"
#include "adt/max_register_type.hpp"
#include "adt/pool_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::core {
namespace {

using harness::AlgoKind;
using harness::RunSpec;

// (type index, n, X fraction of [0, d-eps], delay mode, seed)
using Param = std::tuple<int, int, double, int, int>;

std::unique_ptr<adt::DataType> make_type(int idx) {
  switch (idx) {
    case 0: return std::make_unique<adt::RegisterType>();
    case 1: return std::make_unique<adt::RmwRegisterType>();
    case 2: return std::make_unique<adt::QueueType>();
    case 3: return std::make_unique<adt::StackType>();
    case 4: return std::make_unique<adt::TreeType>();
    case 5: return std::make_unique<adt::SetType>();
    case 6: return std::make_unique<adt::CounterType>();
    case 7: return std::make_unique<adt::PoolType>();
    case 8: return std::make_unique<adt::MaxRegisterType>();
    default: return std::make_unique<adt::DequeType>();
  }
}

const char* type_name(int idx) {
  const char* names[] = {"Register", "RmwRegister", "Queue",       "Stack", "Tree",
                         "Set",      "Counter",     "Pool",        "MaxRegister",
                         "Deque"};
  return names[idx];
}

class LinearizabilityPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(LinearizabilityPropertyTest, AllRunsLinearizableAndConvergent) {
  const auto [type_idx, n, x_fraction, delay_mode, seed] = GetParam();
  auto type = make_type(type_idx);

  RunSpec spec;
  spec.params = sim::ModelParams{n, 10.0, 2.0, (1.0 - 1.0 / n) * 2.0};
  spec.params.validate();
  spec.X = x_fraction * (spec.params.d - spec.params.eps);

  // Adversarial skew: alternate the extremes of the admissible band.
  spec.clock_offsets.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    spec.clock_offsets[static_cast<std::size_t>(i)] =
        (i % 2 == 0 ? spec.params.eps / 2 : -spec.params.eps / 2);
  }

  switch (delay_mode) {
    case 0:
      spec.delays = std::make_shared<sim::ConstantDelay>(spec.params.d);
      break;
    case 1:
      spec.delays = std::make_shared<sim::ConstantDelay>(spec.params.min_delay());
      break;
    default:
      spec.delays = std::make_shared<sim::UniformRandomDelay>(
          spec.params.min_delay(), spec.params.d, static_cast<std::uint64_t>(seed));
      break;
  }

  spec.scripts = harness::random_scripts(*type, n, /*ops_per_proc=*/4,
                                         static_cast<std::uint64_t>(seed * 1000 + type_idx));
  spec.script_gap = 0.0;

  const auto result = harness::execute(*type, spec);

  // Every invocation responded.
  for (const auto& op : result.record.ops) {
    EXPECT_TRUE(op.complete()) << op.op;
  }
  EXPECT_EQ(result.record.ops.size(), static_cast<std::size_t>(n) * 4);

  // Linearizable.
  const auto check = lin::check_linearizability(*type, result.record);
  EXPECT_TRUE(check.linearizable)
      << type->name() << " run not linearizable (n=" << n << ", X=" << spec.X
      << ", delay_mode=" << delay_mode << ", seed=" << seed << ")";

  // All replicas converge to the same state.
  for (const auto& state : result.final_states) {
    EXPECT_EQ(state, result.final_states[0]);
  }
}

std::string sweep_name(const ::testing::TestParamInfo<Param>& info) {
  const int type_idx = std::get<0>(info.param);
  const int n = std::get<1>(info.param);
  const double x_fraction = std::get<2>(info.param);
  const int delay_mode = std::get<3>(info.param);
  const int seed = std::get<4>(info.param);
  return std::string(type_name(type_idx)) + "_n" + std::to_string(n) + "_x" +
         std::to_string(static_cast<int>(x_fraction * 100)) + "_d" +
         std::to_string(delay_mode) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearizabilityPropertyTest,
    ::testing::Combine(::testing::Range(0, 10),           // all types
                       ::testing::Values(2, 3, 5),        // n
                       ::testing::Values(0.0, 0.5, 1.0),  // X fraction
                       ::testing::Values(0, 1, 2),        // delay mode
                       ::testing::Values(1, 2)),          // seed
    sweep_name);

}  // namespace
}  // namespace lintime::core
