// Tests for multi-object composition: independent per-object Algorithm 1
// instances, the ProductType view, and the locality of linearizability
// (combined history linearizable <=> every per-object restriction is).

#include "core/composite.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "sim/world.hpp"

namespace lintime::core {
namespace {

using adt::Value;

TEST(QualifiedOpTest, ParseAndFormat) {
  const auto q = parse_qualified("2:enqueue");
  EXPECT_EQ(q.object, 2u);
  EXPECT_EQ(q.op, "enqueue");
  EXPECT_EQ(qualify(0, "read"), "0:read");
  EXPECT_THROW((void)parse_qualified("enqueue"), std::invalid_argument);
  EXPECT_THROW((void)parse_qualified(":x"), std::invalid_argument);
}

TEST(ProductTypeTest, NamespacedOpsAndIndependentState) {
  adt::QueueType queue;
  adt::RegisterType reg;
  ProductType product({&queue, &reg});

  EXPECT_EQ(product.ops().size(), queue.ops().size() + reg.ops().size());
  auto s = product.make_initial_state();
  s->apply("0:enqueue", Value{5});
  s->apply("1:write", Value{9});
  EXPECT_EQ(s->apply("0:peek", Value::nil()), Value{5});
  EXPECT_EQ(s->apply("1:read", Value::nil()), Value{9});
}

TEST(ProductTypeTest, CloneIsDeep) {
  adt::RegisterType reg;
  ProductType product({&reg, &reg});
  auto a = product.make_initial_state();
  auto b = a->clone();
  a->apply("0:write", Value{7});
  EXPECT_EQ(b->apply("0:read", Value::nil()), Value{0});
}

TEST(ProductTypeTest, EmptyProductRejected) {
  EXPECT_THROW(ProductType({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Composite runs
// ---------------------------------------------------------------------------

struct CompositeRun {
  sim::RunRecord record;
  std::shared_ptr<sim::World> world;
};

CompositeRun run_composite(const ProductType& product, const sim::ModelParams& params,
                           const std::vector<harness::Call>& calls) {
  CompositeRun out;
  sim::WorldConfig config;
  config.params = params;
  config.delays = std::make_shared<sim::UniformRandomDelay>(params.min_delay(), params.d, 17);
  out.world = std::make_shared<sim::World>(config, [&](sim::ProcId) {
    return std::make_unique<CompositeProcess>(product,
                                              TimingPolicy::standard(params, 0.0));
  });
  for (const auto& call : calls) {
    out.world->invoke_at(call.when, call.proc, call.op, call.arg);
  }
  out.world->run();
  out.record = out.world->record();
  return out;
}

TEST(CompositeTest, OperationsRouteToTheRightObject) {
  adt::QueueType queue;
  adt::RegisterType reg;
  ProductType product({&queue, &reg});
  const auto run = run_composite(product, sim::ModelParams{3, 10.0, 2.0, 1.0},
                                 {{0.0, 0, "0:enqueue", Value{5}},
                                  {0.0, 1, "1:write", Value{9}},
                                  {40.0, 2, "0:dequeue", Value::nil()},
                                  {80.0, 2, "1:read", Value::nil()}});
  EXPECT_EQ(run.record.ops[2].ret, Value{5});
  EXPECT_EQ(run.record.ops[3].ret, Value{9});
}

TEST(CompositeTest, PerObjectLatenciesUnchangedByComposition) {
  // Hosting several objects must not slow any of them: an accessor on one
  // object keeps its d-X latency while the other object is busy.
  adt::QueueType queue;
  adt::RegisterType reg;
  ProductType product({&queue, &reg});
  const sim::ModelParams params{3, 10.0, 2.0, 1.0};
  const auto run = run_composite(product, params,
                                 {{0.0, 0, "0:enqueue", Value{1}},
                                  {0.0, 1, "1:read", Value::nil()},
                                  {0.0, 2, "1:write", Value{3}}});
  for (const auto& op : run.record.ops) {
    if (op.op == "1:read") {
      EXPECT_DOUBLE_EQ(op.latency(), params.d);  // d - X, X=0
    }
    if (op.op == "0:enqueue") {
      EXPECT_DOUBLE_EQ(op.latency(), params.eps);  // X + eps
    }
    if (op.op == "1:write") {
      EXPECT_DOUBLE_EQ(op.latency(), params.eps);
    }
  }
}

TEST(CompositeTest, LocalityCombinedAndRestrictionsAgree) {
  adt::QueueType queue;
  adt::RegisterType reg;
  ProductType product({&queue, &reg});
  const sim::ModelParams params{3, 10.0, 2.0, 1.0};

  std::vector<harness::Call> calls;
  // Interleaved concurrent traffic on both objects from all processes.
  for (int round = 0; round < 3; ++round) {
    const double t = round * 30.0;
    calls.push_back({t, 0, "0:enqueue", Value{round}});
    calls.push_back({t, 1, "1:write", Value{round * 10}});
    calls.push_back({t + 0.5, 2, round % 2 == 0 ? "0:peek" : "1:read", Value::nil()});
  }
  const auto run = run_composite(product, params, calls);

  // Combined history against the product spec.
  EXPECT_TRUE(lin::check_linearizability(product, run.record).linearizable);

  // Each restriction against its component spec (locality).
  const auto queue_ops = restrict_to_object(run.record.ops, 0);
  const auto reg_ops = restrict_to_object(run.record.ops, 1);
  EXPECT_EQ(queue_ops.size() + reg_ops.size(), run.record.ops.size());
  EXPECT_TRUE(lin::check_linearizability(queue, queue_ops).linearizable);
  EXPECT_TRUE(lin::check_linearizability(reg, reg_ops).linearizable);
}

TEST(CompositeTest, RestrictionStripsQualification) {
  std::vector<sim::OpRecord> ops(2);
  ops[0].op = "0:enqueue";
  ops[1].op = "1:read";
  const auto only0 = restrict_to_object(ops, 0);
  ASSERT_EQ(only0.size(), 1u);
  EXPECT_EQ(only0[0].op, "enqueue");
}

TEST(CompositeTest, SubInstancesShareNothing) {
  // Same component type twice: writes to object 0 are invisible to object 1.
  adt::RegisterType reg;
  ProductType product({&reg, &reg});
  const auto run = run_composite(product, sim::ModelParams{2, 10.0, 2.0, 1.0},
                                 {{0.0, 0, "0:write", Value{5}},
                                  {40.0, 1, "1:read", Value::nil()},
                                  {80.0, 1, "0:read", Value::nil()}});
  EXPECT_EQ(run.record.ops[1].ret, Value{0});  // object 1 untouched
  EXPECT_EQ(run.record.ops[2].ret, Value{5});
}

}  // namespace
}  // namespace lintime::core
