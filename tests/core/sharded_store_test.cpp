// ShardedStore / ShardedServingProcess tests: keyed-envelope validation,
// deterministic key->shard routing, interned dispatch, replica convergence,
// and the locality property at keyspace scale -- the combined history of a
// 10^4-key store is linearizable, and so is every per-key restriction
// (checked through the component type's fast-path monitor).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adt/register_type.hpp"
#include "core/sharded_store.hpp"
#include "harness/runner.hpp"
#include "lin/check.hpp"
#include "sim/world.hpp"

namespace lintime::core {
namespace {

using adt::Value;

TEST(ShardedStoreTest, ConstructorValidatesArguments) {
  adt::RegisterType reg;
  EXPECT_THROW(ShardedStore(reg, 0, 4), std::invalid_argument);
  EXPECT_THROW(ShardedStore(reg, -5, 4), std::invalid_argument);
  EXPECT_THROW(ShardedStore(reg, 10, 0), std::invalid_argument);
}

TEST(ShardedStoreTest, OpsMirrorComponentInOrder) {
  adt::RegisterType reg;
  ShardedStore store(reg, 100, 4);
  ASSERT_EQ(store.ops().size(), reg.ops().size());
  for (std::size_t i = 0; i < store.ops().size(); ++i) {
    EXPECT_EQ(store.ops()[i].name, reg.ops()[i].name);
    EXPECT_EQ(store.ops()[i].category, reg.ops()[i].category);
    EXPECT_TRUE(store.ops()[i].takes_arg);  // every store op carries [key, inner]
    // Store OpId index == component OpId index, the invariant interned
    // dispatch relies on.
    EXPECT_EQ(store.op_id(store.ops()[i].name).index(), reg.op_id(reg.ops()[i].name).index());
  }
}

TEST(ShardedStoreTest, SplitValidatesEnvelope) {
  adt::RegisterType reg;
  ShardedStore store(reg, 100, 4);
  EXPECT_THROW(store.split(Value{7}), std::invalid_argument);       // not a vec
  EXPECT_THROW(store.split(Value::nil()), std::invalid_argument);   // not a vec
  EXPECT_THROW(store.split(ShardedStore::keyed(100, Value{1})), std::invalid_argument);
  EXPECT_THROW(store.split(ShardedStore::keyed(-1, Value{1})), std::invalid_argument);

  const Value ok = ShardedStore::keyed(42, Value{7});
  const auto ka = store.split(ok);
  EXPECT_EQ(ka.key, 42);
  EXPECT_EQ(ka.inner->as_int(), 7);
}

TEST(ShardedStoreTest, RoutingIsDeterministicAndInRange) {
  adt::RegisterType reg;
  ShardedStore store(reg, 100000, 16);
  std::set<int> used;
  for (std::int64_t key = 0; key < 100000; key += 97) {
    const int shard = store.shard_of(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 16);
    EXPECT_EQ(shard, ShardedStore::shard_of(key, 16));  // pure function
    used.insert(shard);
  }
  // The multiplicative hash must actually spread a dense key range.
  EXPECT_EQ(used.size(), 16u);
}

TEST(ShardedStoreTest, KeyedStateAppliesPerKey) {
  adt::RegisterType reg;
  ShardedStore store(reg, 1000, 4);
  const auto state = store.initial_state();
  state->apply("write", ShardedStore::keyed(3, Value{30}));
  state->apply("write", ShardedStore::keyed(7, Value{70}));
  EXPECT_EQ(state->apply("read", ShardedStore::keyed(3, Value::nil())).as_int(), 30);
  EXPECT_EQ(state->apply("read", ShardedStore::keyed(7, Value::nil())).as_int(), 70);
  EXPECT_EQ(state->apply("read", ShardedStore::keyed(500, Value::nil())).as_int(), 0);
}

TEST(ShardedStoreTest, CanonicalIgnoresUntouchedAndInitialValuedKeys) {
  adt::RegisterType reg;
  ShardedStore store(reg, 1000, 4);
  const auto a = store.initial_state();
  const auto b = store.initial_state();
  // b reads a key (materializing it) and writes-then-reverts another:
  // behaviourally both states are still the initial store.
  b->apply("read", ShardedStore::keyed(9, Value::nil()));
  b->apply("write", ShardedStore::keyed(5, Value{1}));
  b->apply("write", ShardedStore::keyed(5, Value{0}));
  EXPECT_EQ(a->canonical(), b->canonical());
  b->apply("write", ShardedStore::keyed(5, Value{2}));
  EXPECT_NE(a->canonical(), b->canonical());
}

TEST(ShardedStoreTest, SampleArgsCoverKeyspaceEnds) {
  adt::RegisterType reg;
  ShardedStore store(reg, 1000, 4);
  for (const auto& spec : store.ops()) {
    const auto args = store.sample_args(spec.name);
    ASSERT_FALSE(args.empty());
    std::set<std::int64_t> keys;
    for (const auto& arg : args) keys.insert(store.split(arg).key);
    EXPECT_EQ(keys, (std::set<std::int64_t>{0, 999}));
  }
}

// ---------------------------------------------------------------------------
// End-to-end serving runs
// ---------------------------------------------------------------------------

harness::RunResult run_serving(const ShardedStore& store, int n, int ops_per_proc,
                               std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params = sim::ModelParams{n, 10.0, 2.0, 0.0};
  spec.params.eps = spec.params.optimal_eps();
  spec.algo = harness::AlgoKind::kShardedServing;
  spec.delays = std::make_shared<sim::UniformRandomDelay>(spec.params.min_delay(),
                                                          spec.params.d, seed);
  spec.scripts = harness::sharded_scripts(store, n, ops_per_proc, seed * 31);
  return harness::execute(store, spec);
}

TEST(ShardedServingTest, RequiresShardedStoreType) {
  adt::RegisterType reg;
  harness::RunSpec spec;
  spec.params = sim::ModelParams{2, 10.0, 2.0, 0.0};
  spec.params.eps = spec.params.optimal_eps();
  spec.algo = harness::AlgoKind::kShardedServing;
  EXPECT_THROW((void)harness::execute(reg, spec), std::invalid_argument);
}

TEST(ShardedServingTest, ReplicasConvergeAcrossProcesses) {
  adt::RegisterType reg;
  ShardedStore store(reg, 10000, 8);
  const auto result = run_serving(store, 4, 20, 5);
  ASSERT_EQ(result.final_states.size(), 4u);
  for (std::size_t p = 1; p < result.final_states.size(); ++p) {
    EXPECT_EQ(result.final_states[0], result.final_states[p]) << "process " << p;
  }
  EXPECT_EQ(result.record.ops.size(), 80u);
  for (const auto& op : result.record.ops) {
    EXPECT_TRUE(op.complete());
    EXPECT_TRUE(op.op_id.valid());  // interned dispatch end to end
  }
}

TEST(ShardedServingTest, ShardRestrictionsPartitionTheHistory) {
  adt::RegisterType reg;
  ShardedStore store(reg, 10000, 8);
  const auto result = run_serving(store, 4, 15, 7);
  std::size_t total = 0;
  for (int s = 0; s < store.num_shards(); ++s) {
    const auto part = restrict_to_shard(result.record.ops, store, s);
    for (const auto& op : part) {
      EXPECT_EQ(store.shard_of(store.split(op.arg).key), s);
    }
    total += part.size();
  }
  EXPECT_EQ(total, result.record.ops.size());
}

TEST(ShardedServingTest, LocalityAtTenThousandKeys) {
  // The locality property at shard scale (Section 2.3): the COMBINED keyed
  // history of a >= 10^4-key store is linearizable w.r.t. the store, and
  // every per-key restriction is linearizable w.r.t. the component --
  // decided by the component's O(n log n) register monitor (fast path),
  // since sharded_scripts writes globally unique values.
  adt::RegisterType reg;
  ShardedStore store(reg, 10000, 8);
  const auto result = run_serving(store, 4, 75, 3);
  ASSERT_EQ(result.record.ops.size(), 300u);

  const auto combined = lin::check(store, result.record.ops);
  EXPECT_TRUE(combined.result.linearizable);

  std::set<std::int64_t> keys;
  for (const auto& op : result.record.ops) keys.insert(store.split(op.arg).key);
  EXPECT_GT(keys.size(), 100u);  // the workload actually spread over the keyspace

  std::size_t fast_path = 0;
  for (const std::int64_t key : keys) {
    const auto ops = restrict_to_key(result.record.ops, store, key);
    ASSERT_FALSE(ops.empty());
    for (const auto& op : ops) {
      EXPECT_TRUE(op.op_id.valid());  // ids survive the projection
    }
    const auto report = lin::check(reg, ops);
    EXPECT_TRUE(report.result.linearizable) << "key " << key;
    if (report.stats.route == lin::CheckRoute::kFastPath) ++fast_path;
  }
  // Each restriction is an unambiguous register history: all of them must
  // take the fast path.
  EXPECT_EQ(fast_path, keys.size());
}

}  // namespace
}  // namespace lintime::core
