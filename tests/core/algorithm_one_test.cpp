// Behavioural tests for Algorithm 1: correct values, replica convergence,
// the Lemma 5 invariant (mutators execute in timestamp order at every
// process), and the line-2 timestamp back-dating regression test.

#include "core/algorithm_one.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::core {
namespace {

using adt::Value;
using harness::AlgoKind;
using harness::Call;
using harness::RunSpec;

sim::ModelParams params5() { return sim::ModelParams{5, 10.0, 2.0, (1.0 - 1.0 / 5) * 2.0}; }

TEST(AlgorithmOneTest, SingleWriteThenReadReturnsWrittenValue) {
  adt::RegisterType reg;
  RunSpec spec;
  spec.params = params5();
  spec.calls = {
      Call{0.0, 0, "write", Value{42}},
      Call{50.0, 1, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  ASSERT_EQ(result.record.ops.size(), 2u);
  EXPECT_EQ(result.record.ops[1].ret, Value{42});
}

TEST(AlgorithmOneTest, ReadAtThirdProcessSeesRemoteWrite) {
  adt::RegisterType reg;
  RunSpec spec;
  spec.params = params5();
  spec.calls = {
      Call{0.0, 3, "write", Value{7}},
      Call{100.0, 4, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{7});
}

TEST(AlgorithmOneTest, MixedOperationReturnsCorrectValue) {
  adt::RmwRegisterType reg;
  RunSpec spec;
  spec.params = params5();
  spec.calls = {
      Call{0.0, 0, "write", Value{10}},
      Call{50.0, 1, "fetch_add", Value{5}},
      Call{100.0, 2, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{10});
  EXPECT_EQ(result.record.ops[2].ret, Value{15});
}

TEST(AlgorithmOneTest, ReplicasConvergeAfterQuiescence) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params5();
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{0.0, 1, "enqueue", Value{2}},
      Call{0.5, 2, "enqueue", Value{3}},
      Call{30.0, 3, "dequeue", Value::nil()},
  };
  const auto result = harness::execute(queue, spec);
  ASSERT_EQ(result.final_states.size(), 5u);
  for (const auto& state : result.final_states) {
    EXPECT_EQ(state, result.final_states[0]);
  }
}

TEST(AlgorithmOneTest, ConcurrentMutatorsOrderedByTimestampEverywhere) {
  // Two concurrent writes: all replicas must apply them in the same
  // (timestamp) order -- the one from the lower process id wins ties.
  adt::RegisterType reg;
  RunSpec spec;
  spec.params = params5();
  spec.calls = {
      Call{0.0, 0, "write", Value{100}},
      Call{0.0, 1, "write", Value{200}},
      Call{50.0, 2, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  // Equal clock timestamps, tie broken by proc id: p1's write is later.
  EXPECT_EQ(result.record.ops[2].ret, Value{200});
  for (const auto& state : result.final_states) EXPECT_EQ(state, "reg:200");
}

TEST(AlgorithmOneTest, SkewedClocksStillLinearizable) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = params5();
  const double e = spec.params.eps;
  spec.clock_offsets = {e / 2, -e / 2, 0.0, e / 2, -e / 2};
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{0.1, 1, "enqueue", Value{2}},
      Call{40.0, 2, "dequeue", Value::nil()},
      Call{40.0, 3, "peek", Value::nil()},
  };
  const auto result = harness::execute(queue, spec);
  EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable);
}

TEST(AlgorithmOneTest, ExecutedMutatorsInTimestampOrderLemma5) {
  // Lemma 5 invariant, checked directly against every replica's execution
  // log under a bursty concurrent workload with random delays.
  adt::QueueType queue;
  sim::WorldConfig config;
  config.params = params5();
  config.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 17);

  std::vector<AlgorithmOneProcess*> procs;
  sim::World world(config, [&](sim::ProcId) {
    auto p = std::make_unique<AlgorithmOneProcess>(
        queue, TimingPolicy::standard(config.params, 0.0));
    procs.push_back(p.get());
    return p;
  });
  for (int i = 0; i < 5; ++i) {
    world.invoke_at(0.0 + 0.3 * i, i, "enqueue", Value{i});
    world.invoke_at(20.0 + 0.3 * i, i, "enqueue", Value{10 + i});
  }
  world.run();

  for (const auto* proc : procs) {
    const auto& log = proc->executed();
    ASSERT_FALSE(log.empty());
    for (std::size_t i = 1; i < log.size(); ++i) {
      EXPECT_LT(log[i - 1].ts, log[i].ts)
          << "mutator executed out of timestamp order at index " << i;
    }
  }
}

TEST(AlgorithmOneTest, AopTimestampBackdatedByX) {
  // Regression for line 2: with back-dating, an accessor invoked right
  // after a mutator's response must be linearized after it even when X is
  // large (the mutator-then-accessor case of Lemma 6).
  adt::RegisterType reg;
  RunSpec spec;
  spec.params = params5();
  spec.X = spec.params.d - spec.params.eps;  // extreme X: fast mutators impossible... fast accessors
  const double mop_latency = spec.X + spec.params.eps;
  spec.calls = {
      Call{0.0, 0, "write", Value{1}},
      // Invoked just after the write responds at p0 (non-overlapping).
      Call{mop_latency + 0.001, 1, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{1});
  EXPECT_TRUE(lin::check_linearizability(reg, result.record).linearizable);
}

TEST(AlgorithmOneTest, InvalidXRejected) {
  sim::ModelParams p = params5();
  EXPECT_THROW(TimingPolicy::standard(p, -0.1), std::invalid_argument);
  EXPECT_THROW(TimingPolicy::standard(p, p.d - p.eps + 0.1), std::invalid_argument);
  EXPECT_NO_THROW(TimingPolicy::standard(p, 0.0));
  EXPECT_NO_THROW(TimingPolicy::standard(p, p.d - p.eps));
}

TEST(TimestampTest, LexicographicOrder) {
  EXPECT_LT((Timestamp{1.0, 5}), (Timestamp{2.0, 0}));
  EXPECT_LT((Timestamp{1.0, 0}), (Timestamp{1.0, 1}));
  EXPECT_EQ((Timestamp{1.0, 1}), (Timestamp{1.0, 1}));
  EXPECT_GT((Timestamp{1.5, 0}), (Timestamp{1.0, 9}));
}

}  // namespace
}  // namespace lintime::core
