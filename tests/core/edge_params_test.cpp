// Edge-of-the-model parameters: zero delay uncertainty (u = 0), perfectly
// synchronized clocks (eps = 0), X at both ends of its range, n = 2, and
// combinations.  The formulas degrade gracefully: with u = 0 and eps = 0,
// pure mutators may respond instantly (X = 0) and the lower bounds
// (1-1/k)u = 0 and u/4 = 0 are vacuous, exactly as the paper's formulas say.

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::core {
namespace {

using adt::Value;
using harness::Call;
using harness::RunSpec;

TEST(EdgeParamsTest, ZeroUncertaintyZeroSkewInstantWrites) {
  adt::RegisterType reg;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 0.0, 0.0};
  spec.X = 0.0;
  spec.calls = {
      Call{0.0, 0, "write", Value{5}},
      Call{0.001, 1, "read", Value::nil()},
      Call{50.0, 2, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("write").max, 0.0);  // X + eps = 0
  EXPECT_TRUE(lin::check_linearizability(reg, result.record).linearizable);
  EXPECT_EQ(result.record.ops[2].ret, Value{5});
}

TEST(EdgeParamsTest, ZeroUncertaintyRandomWorkloadsLinearizable) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunSpec spec;
    spec.params = sim::ModelParams{3, 10.0, 0.0, 0.0};
    spec.X = 0.0;
    spec.scripts = harness::random_scripts(queue, 3, 4, seed);
    const auto result = harness::execute(queue, spec);
    EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable) << seed;
    for (const auto& s : result.final_states) EXPECT_EQ(s, result.final_states[0]);
  }
}

TEST(EdgeParamsTest, XAtUpperEndWithZeroSkew) {
  // eps = 0 allows X = d: accessors become instantaneous (d - X = 0) while
  // mutators pay the full d.
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 1.0, 0.0};
  spec.X = spec.params.d;  // d - eps = d
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{50.0, 1, "peek", Value::nil()},
      Call{100.0, 2, "enqueue", Value{2}},
  };
  const auto result = harness::execute(queue, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("peek").max, 0.0);
  EXPECT_DOUBLE_EQ(result.stats_for("enqueue").max, spec.params.d);
  EXPECT_EQ(result.record.ops[1].ret, Value{1});
  EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable);
}

TEST(EdgeParamsTest, TwoProcessesMinimumSystem) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunSpec spec;
    spec.params = sim::ModelParams{2, 10.0, 2.0, 1.0};
    spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, seed);
    spec.clock_offsets = {0.5, -0.5};
    spec.scripts = harness::random_scripts(queue, 2, 5, seed * 11);
    const auto result = harness::execute(queue, spec);
    EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable) << seed;
  }
}

TEST(EdgeParamsTest, UEqualsDFullUncertainty) {
  // Delays anywhere in [0, d]: the widest admissible band.
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 10.0, 2.0};
  spec.delays = std::make_shared<sim::UniformRandomDelay>(0.0, 10.0, 3);
  spec.clock_offsets = {1.0, -1.0, 0.0};
  spec.scripts = harness::random_scripts(queue, 3, 5, 19);
  const auto result = harness::execute(queue, spec);
  EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable);
}

TEST(EdgeParamsTest, InvalidParamsRejected) {
  EXPECT_THROW(sim::ModelParams({1, 10.0, 2.0, 1.0}).validate(), std::invalid_argument);
  EXPECT_THROW(sim::ModelParams({3, -1.0, 0.0, 0.0}).validate(), std::invalid_argument);
  EXPECT_THROW(sim::ModelParams({3, 10.0, 11.0, 1.0}).validate(), std::invalid_argument);
  EXPECT_THROW(sim::ModelParams({3, 10.0, 2.0, -0.5}).validate(), std::invalid_argument);
  EXPECT_NO_THROW(sim::ModelParams({2, 10.0, 0.0, 0.0}).validate());
}

}  // namespace
}  // namespace lintime::core
