// Tests for scenario expansion (scenario/expand.hpp): grids and sweeps to
// job lists, $references, canonicalization, per-kind strictness, fault and
// store wiring, and the CLI axis-override escape hatch.

#include "scenario/expand.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "sim/fault.hpp"

namespace lintime::scenario {
namespace {

Scenario make(const std::string& extra) {
  return parse_scenario(
      "[scenario]\n"
      "name = \"t\"\n"
      "type = \"queue\"\n"
      "check = true\n"
      "\n"
      "[model]\n"
      "n = 3\n"
      "d = 10.0\n"
      "u = 2.0\n"
      "eps = 1.0\n"
      "\n"
      "[workload]\n"
      "kind = \"random-scripts\"\n"
      "ops-per-proc = 2\n"
      "seed = 7\n" +
          extra,
      "t.toml");
}

std::string fail_msg(const std::string& extra,
                     const std::vector<AxisOverride>& overrides = {}) {
  try {
    (void)expand(make(extra), overrides);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an expansion error for extra:\n" << extra;
  return "";
}

TEST(ExpandTest, NoSweepYieldsOneJobNamedAfterScenario) {
  const auto c = expand(make(""));
  ASSERT_EQ(c.spec.jobs.size(), 1u);
  const campaign::Job& job = c.spec.jobs[0];
  EXPECT_EQ(job.name, "t");
  EXPECT_TRUE(job.tags.empty());
  EXPECT_TRUE(job.check_linearizability);
  EXPECT_EQ(job.type, c.base_type.get());
  EXPECT_EQ(job.spec.algo, harness::AlgoKind::kAlgorithmOne);
  EXPECT_EQ(job.spec.X, 0.0);
  EXPECT_EQ(job.spec.params.n, 3);
  EXPECT_NE(job.spec.workload, nullptr);
  ASSERT_EQ(c.job_descriptions.size(), 1u);
}

TEST(ExpandTest, GridRowMajorLastAxisFastest) {
  const auto c = expand(make("[grid]\naxis.x = [0, 0.5]\naxis.seed = \"1..2\"\n"));
  ASSERT_EQ(c.spec.jobs.size(), 4u);
  EXPECT_EQ(c.spec.jobs[0].name, "x=0/seed=1");
  EXPECT_EQ(c.spec.jobs[1].name, "x=0/seed=2");
  EXPECT_EQ(c.spec.jobs[2].name, "x=0.5/seed=1");
  EXPECT_EQ(c.spec.jobs[3].name, "x=0.5/seed=2");
  // Tags are the coordinates in axis declaration order.
  ASSERT_EQ(c.spec.jobs[2].tags.size(), 2u);
  EXPECT_EQ(c.spec.jobs[2].tags[0], (std::pair<std::string, std::string>{"x", "0.5"}));
  EXPECT_EQ(c.spec.jobs[2].tags[1], (std::pair<std::string, std::string>{"seed", "1"}));
}

TEST(ExpandTest, XFracScalesByDMinusEps) {
  // d = 10, eps = 1: X = (d - eps) * 0.5 = 4.5.
  const auto c = expand(make("[run]\nx-frac = \"$x\"\n[grid]\naxis.x = [0, 0.5]\n"));
  ASSERT_EQ(c.spec.jobs.size(), 2u);
  EXPECT_EQ(c.spec.jobs[0].spec.X, 0.0);
  EXPECT_EQ(c.spec.jobs[1].spec.X, 4.5);
}

TEST(ExpandTest, XForcedZeroOutsideAlgorithmOneFamily) {
  // x-frac may ride a $algo axis: the baseline's points force X = 0 instead
  // of erroring (the latency-grid shape).
  const auto c = expand(make("[run]\nalgo = \"$algo\"\nx-frac = 0.5\n"
                             "[grid]\naxis.algo = [\"algorithm1\", \"centralized\"]\n"));
  ASSERT_EQ(c.spec.jobs.size(), 2u);
  EXPECT_EQ(c.spec.jobs[0].spec.X, 4.5);
  EXPECT_EQ(c.spec.jobs[1].spec.algo, harness::AlgoKind::kCentralized);
  EXPECT_EQ(c.spec.jobs[1].spec.X, 0.0);
}

TEST(ExpandTest, SweepsExpandInFileOrderWithOverridesAndTemplates) {
  const auto c = expand(make(
      "[sweep.a]\nname = \"a/n=$n\"\naxis.n = [3, 4]\ntag.mode = \"a\"\ntag.n = \"$n\"\n"
      "set.model.n = \"$n\"\n"
      "[sweep.b]\nname = \"b#$index\"\naxis.s = [1]\nset.run.algo = \"centralized\"\n"));
  ASSERT_EQ(c.spec.jobs.size(), 3u);
  EXPECT_EQ(c.spec.jobs[0].name, "a/n=3");
  EXPECT_EQ(c.spec.jobs[1].name, "a/n=4");
  EXPECT_EQ(c.spec.jobs[1].spec.params.n, 4);
  ASSERT_EQ(c.spec.jobs[0].tags.size(), 2u);
  EXPECT_EQ(c.spec.jobs[0].tags[0], (std::pair<std::string, std::string>{"mode", "a"}));
  EXPECT_EQ(c.spec.jobs[0].tags[1], (std::pair<std::string, std::string>{"n", "3"}));
  // $index is the global job counter, usable in any sweep's templates.
  EXPECT_EQ(c.spec.jobs[2].name, "b#2");
  EXPECT_EQ(c.spec.jobs[2].spec.algo, harness::AlgoKind::kCentralized);
}

TEST(ExpandTest, ReferenceArithmetic) {
  const auto c = expand(make("[grid]\naxis.ops = [12]\n"
                             "[store]\nkeys = \"$ops*2\"\nshards = 4\n"));
  (void)c;  // keys = 24 accepted; the store section exercises $axis*K
  EXPECT_NE(fail_msg("[grid]\naxis.ops = [10]\n[store]\nkeys = \"$ops/3\"\nshards = 2\n")
                .find("not divisible by 3"),
            std::string::npos);
  EXPECT_NE(fail_msg("[run]\nmax-events = \"$nope\"\n").find("names no axis"),
            std::string::npos);
}

TEST(ExpandTest, AxisOverridesReplaceValues) {
  const auto base = make("[grid]\naxis.seed = \"1..6\"\n");
  EXPECT_EQ(expand(base).spec.jobs.size(), 6u);
  const auto c = expand(base, {{"seed", {"9", "10"}}});
  ASSERT_EQ(c.spec.jobs.size(), 2u);
  EXPECT_EQ(c.spec.jobs[0].name, "seed=9");
  // An override naming no declared axis is an error, not a silent no-op.
  EXPECT_THROW((void)expand(base, {{"ops", {"5"}}}), std::runtime_error);
}

TEST(ExpandTest, FaultSectionsCompile) {
  const auto c = expand(make("[faults]\ncrash = [\"2@50\"]\n"
                             "link-drop = [\"0>1@10..20\", \"*>2@5..6\"]\n"));
  const sim::FaultSchedule& f = c.spec.jobs[0].spec.faults;
  ASSERT_EQ(f.crashes.size(), 1u);
  EXPECT_EQ(f.crashes[0].proc, 2);
  EXPECT_EQ(f.crashes[0].when, 50.0);
  ASSERT_EQ(f.link_drops.size(), 2u);
  EXPECT_EQ(f.link_drops[0].src, 0);
  EXPECT_EQ(f.link_drops[0].dst, 1);
  EXPECT_EQ(f.link_drops[1].src, sim::kAnyProc);

  // A 2-vs-1 partition: 2*|a|*|b| directed links per cycle, 2 cycles.
  const auto p = expand(make("[faults]\npartition-a = [0, 1]\npartition-b = [2]\n"
                             "partition-cut = 10.0\npartition-period = 50.0\n"
                             "partition-cycles = 2\n"));
  EXPECT_EQ(p.spec.jobs[0].spec.faults.link_drops.size(), 8u);

  EXPECT_NE(fail_msg("[faults]\ncrash = [\"7@50\"]\n").find("crash"), std::string::npos);
  EXPECT_NE(fail_msg("[faults]\ncrash = [\"zap\"]\n").find("expected PROC@TIME"),
            std::string::npos);
  EXPECT_NE(fail_msg("[faults]\npartition-a = [0]\n").find("both be present"),
            std::string::npos);
}

TEST(ExpandTest, PerKindKeyStrictness) {
  // 'rounds' belongs to staggered-rounds, not random-scripts.
  EXPECT_NE(fail_msg("[sweep.a]\naxis.s = [1]\nset.workload.rounds = 8\n")
                .find("does not apply"),
            std::string::npos);
  // 'value' belongs to constant delays, not uniform-random.
  EXPECT_NE(
      fail_msg("[delays]\nkind = \"uniform-random\"\nseed = 1\nvalue = 9.0\n")
          .find("does not apply"),
      std::string::npos);
}

TEST(ExpandTest, DelayMatrixMustBeNByN) {
  EXPECT_NE(fail_msg("[delays]\nkind = \"matrix\"\nmatrix = [1.0, 2.0]\n").find("n*n"),
            std::string::npos);
}

TEST(ExpandTest, MutuallyExclusivePairs) {
  EXPECT_NE(fail_msg("[run]\nx-frac = 0.5\nx-abs = 2.0\n").find("mutually exclusive"),
            std::string::npos);
  EXPECT_NE(fail_msg("[clocks]\ndrift = 0.01\nrates = [1.0, 1.0, 1.0]\n")
                .find("mutually exclusive"),
            std::string::npos);
}

TEST(ExpandTest, ShardedServingRequiresStoreAndSharesIt) {
  EXPECT_NE(fail_msg("[run]\nalgo = \"sharded-serving\"\n").find("store"),
            std::string::npos);
  const auto c = expand(parse_scenario(
      "[scenario]\nname = \"srv\"\ntype = \"queue\"\n"
      "[model]\nn = 4\nd = 10.0\nu = 2.0\neps = 1.0\n"
      "[store]\nkeys = 64\nshards = 4\n"
      "[run]\nalgo = \"sharded-serving\"\nscheduler = \"$sched\"\nrecord = \"ops-only\"\n"
      "[workload]\nkind = \"sharded\"\nops-per-proc = 4\nseed = 1\n"
      "[grid]\naxis.sched = [\"ring\", \"heap\"]\n",
      "srv.toml"));
  ASSERT_EQ(c.spec.jobs.size(), 2u);
  ASSERT_EQ(c.stores.size(), 1u);  // one (keys, shards) pair -> one shared store
  EXPECT_EQ(c.spec.jobs[0].type, c.spec.jobs[1].type);
  EXPECT_EQ(c.spec.jobs[0].type, c.stores[0].get());
  EXPECT_EQ(c.spec.jobs[0].spec.scheduler, sim::SchedulerKind::kEventRing);
  EXPECT_EQ(c.spec.jobs[1].spec.scheduler, sim::SchedulerKind::kBinaryHeap);
}

TEST(ExpandTest, MakeDataTypeKnowsTheRegistry) {
  EXPECT_NE(make_data_type("queue"), nullptr);
  EXPECT_NE(make_data_type("rmw_register"), nullptr);
  EXPECT_THROW((void)make_data_type("frobnicator"), std::runtime_error);
}

TEST(ExpandTest, DigestIsStableAndSensitive) {
  const auto a1 = expand(make(""));
  const auto a2 = expand(make(""));
  EXPECT_EQ(campaign_digest(a1), campaign_digest(a2));
  EXPECT_EQ(campaign_digest(a1).size(), 32u);
  const auto b = expand(make("[run]\nx-abs = 1.0\n"));
  EXPECT_NE(campaign_digest(a1), campaign_digest(b));
}

}  // namespace
}  // namespace lintime::scenario
