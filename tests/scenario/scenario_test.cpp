// Tests for the scenario schema layer (scenario/scenario.hpp): structural
// validation on top of the TOML parse, plus the checked-in negative fixtures
// -- every bad file must die with a "file:line: message" error, never load.

#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/expand.hpp"

#ifndef LINTIME_SCENARIO_FIXTURE_DIR
#define LINTIME_SCENARIO_FIXTURE_DIR "tests/scenario/fixtures"
#endif

namespace lintime::scenario {
namespace {

/// A minimal valid scenario with `extra` sections appended.
std::string minimal(const std::string& extra = "") {
  return "[scenario]\n"
         "name = \"t\"\n"
         "type = \"queue\"\n"
         "\n"
         "[model]\n"
         "n = 3\n"
         "d = 10.0\n"
         "u = 2.0\n"
         "eps = 1.0\n"
         "\n"
         "[workload]\n"
         "kind = \"random-scripts\"\n"
         "ops-per-proc = 2\n"
         "seed = 7\n" +
         extra;
}

std::string fail_msg(const std::string& text) {
  try {
    (void)parse_scenario(text, "t.toml");
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a validation error for:\n" << text;
  return "";
}

TEST(ScenarioTest, MinimalScenarioLoads) {
  const auto sc = parse_scenario(minimal(), "t.toml");
  EXPECT_EQ(sc.name, "t");
  EXPECT_EQ(sc.type_name, "queue");
}

TEST(ScenarioTest, GridAndSweepKeysAccepted) {
  EXPECT_NO_THROW((void)parse_scenario(minimal("[grid]\naxis.x = [0, 1]\ntag.x = \"$x\"\n"),
                                       "t.toml"));
  EXPECT_NO_THROW((void)parse_scenario(
      minimal("[sweep.a]\nname = \"a/$x\"\naxis.x = [0, 1]\nset.model.n = 4\n"), "t.toml"));
}

TEST(ScenarioTest, RequiredPiecesEnforced) {
  EXPECT_NE(fail_msg("[model]\nn = 2\nd = 10.0\nu = 2.0\neps = 1.0\n"
                     "[workload]\nkind = \"random-scripts\"\nops-per-proc = 1\nseed = 1\n")
                .find("missing required section [scenario]"),
            std::string::npos);
  EXPECT_NE(fail_msg("[scenario]\ntype = \"queue\"\n").find("missing required key 'name'"),
            std::string::npos);
  EXPECT_NE(fail_msg("[scenario]\nname = \"t\"\ntype = \"queue\"\n"
                     "[workload]\nkind = \"random-scripts\"\nops-per-proc = 1\nseed = 1\n")
                .find("missing required section [model]"),
            std::string::npos);
  EXPECT_NE(fail_msg("[scenario]\nname = \"t\"\ntype = 3\n").find("must be a string"),
            std::string::npos);
}

TEST(ScenarioTest, UnknownSectionAndKeyRejected) {
  EXPECT_NE(fail_msg(minimal("[delayz]\nkind = \"constant\"\n")).find("unknown section"),
            std::string::npos);
  EXPECT_NE(fail_msg(minimal("[run]\nalgos = \"x\"\n")).find("unknown key 'algos'"),
            std::string::npos);
}

TEST(ScenarioTest, SweepKeyRules) {
  EXPECT_NE(fail_msg(minimal("[grid]\naxis.index = [1]\n")).find("reserved"),
            std::string::npos);
  EXPECT_NE(fail_msg(minimal("[grid]\nset.model.n = 4\n")).find("only allowed in [sweep.*]"),
            std::string::npos);
  EXPECT_NE(fail_msg(minimal("[sweep.a]\nset.scenario.name = \"x\"\n"))
                .find("targets unknown section"),
            std::string::npos);
  EXPECT_NE(fail_msg(minimal("[sweep.a]\nset.model.q = 1\n")).find("targets unknown key"),
            std::string::npos);
  EXPECT_NE(fail_msg(minimal("[sweep.a]\nbogus = 1\n")).find("unknown key 'bogus'"),
            std::string::npos);
  EXPECT_NE(fail_msg(minimal("[grid]\naxis.x = [1]\n[sweep.a]\naxis.y = [1]\n"))
                .find("cannot be mixed"),
            std::string::npos);
}

// Every checked-in negative fixture must fail to load-and-expand, and the
// error must carry the fixture path and a line number ("path:LINE: ...").
TEST(ScenarioTest, NegativeFixturesAllRejectedWithLocation) {
  const std::string dir = LINTIME_SCENARIO_FIXTURE_DIR;
  std::vector<std::string> fixtures;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".toml") fixtures.push_back(entry.path().string());
  }
  ASSERT_GE(fixtures.size(), 10u) << "fixture corpus went missing from " << dir;

  for (const std::string& path : fixtures) {
    try {
      const auto sc = load_scenario_file(path);
      (void)expand(sc);  // some fixtures are only detectable at expansion
      ADD_FAILURE() << path << " loaded and expanded without error";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_EQ(msg.rfind(path + ":", 0), 0u)
          << path << ": error lacks file:line prefix: " << msg;
      const std::size_t colon = msg.find(':', path.size() + 1);
      ASSERT_NE(colon, std::string::npos) << msg;
      const std::string line = msg.substr(path.size() + 1, colon - path.size() - 1);
      EXPECT_FALSE(line.empty()) << msg;
      EXPECT_EQ(line.find_first_not_of("0123456789"), std::string::npos)
          << path << ": non-numeric line in: " << msg;
    }
  }
}

}  // namespace
}  // namespace lintime::scenario
