// Tests for the strict mini-TOML parser (scenario/toml.hpp): every accepted
// construct, and every malformed one as a "file:line: message" error.

#include "scenario/toml.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace lintime::scenario {
namespace {

/// Parses `text` expecting failure; returns the exception message.
std::string fail_msg(const std::string& text) {
  try {
    (void)parse_toml(text, "t.toml");
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a parse error for:\n" << text;
  return "";
}

TEST(TomlTest, ParsesEveryScalarKind) {
  const auto doc = parse_toml(
      "[sec]\n"
      "s = \"hello\"\n"
      "i = -42\n"
      "f = 1.5e-3\n"
      "b = true\n"
      "a = [1, 2.5, \"x\", false]\n",
      "t.toml");
  ASSERT_EQ(doc.sections.size(), 1u);
  const TomlSection& sec = doc.sections[0];
  EXPECT_EQ(sec.name, "sec");
  EXPECT_EQ(sec.line, 1);
  ASSERT_EQ(sec.entries.size(), 5u);

  const TomlValue* s = sec.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, TomlValue::Kind::kString);
  EXPECT_EQ(s->str, "hello");
  EXPECT_EQ(s->line, 2);

  const TomlValue* i = sec.find("i");
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(i->kind, TomlValue::Kind::kInt);
  EXPECT_EQ(i->i, -42);
  EXPECT_EQ(i->num, -42.0);

  const TomlValue* f = sec.find("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, TomlValue::Kind::kFloat);
  EXPECT_DOUBLE_EQ(f->num, 1.5e-3);

  const TomlValue* b = sec.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->kind, TomlValue::Kind::kBool);
  EXPECT_TRUE(b->b);

  const TomlValue* a = sec.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->kind, TomlValue::Kind::kArray);
  ASSERT_EQ(a->items.size(), 4u);
  EXPECT_EQ(a->items[0].kind, TomlValue::Kind::kInt);
  EXPECT_EQ(a->items[1].kind, TomlValue::Kind::kFloat);
  EXPECT_EQ(a->items[2].kind, TomlValue::Kind::kString);
  EXPECT_EQ(a->items[3].kind, TomlValue::Kind::kBool);
}

TEST(TomlTest, CommentsAreQuoteAware) {
  // The '#' inside the quoted string is payload (table-bench job names start
  // with '#'); the one outside is a comment.
  const auto doc = parse_toml(
      "# leading comment\n"
      "[sec]  # trailing\n"
      "name = \"#0/alg/op\"  # comment after value\n",
      "t.toml");
  const TomlValue* v = doc.sections[0].find("name");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->str, "#0/alg/op");
}

TEST(TomlTest, StringEscapes) {
  const auto doc = parse_toml("[s]\nk = \"a\\\"b\\\\c\"\n", "t.toml");
  EXPECT_EQ(doc.sections[0].find("k")->str, "a\"b\\c");
}

TEST(TomlTest, ArrayEdgeCases) {
  const auto doc = parse_toml(
      "[s]\n"
      "empty = []\n"
      "trailing = [1, 2,]\n"
      "quoted = [\"a,b\", \"c\"]\n",
      "t.toml");
  EXPECT_TRUE(doc.sections[0].find("empty")->items.empty());
  EXPECT_EQ(doc.sections[0].find("trailing")->items.size(), 2u);
  // Commas inside quoted elements do not split.
  const TomlValue* q = doc.sections[0].find("quoted");
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_EQ(q->items[0].str, "a,b");
}

TEST(TomlTest, FindMissesReturnNull) {
  const auto doc = parse_toml("[s]\nk = 1\n", "t.toml");
  EXPECT_EQ(doc.find("nope"), nullptr);
  EXPECT_EQ(doc.sections[0].find("nope"), nullptr);
}

TEST(TomlTest, ErrorsCarryFileAndLine) {
  // Line 3 is the offender in each document; the prefix is "file:line: ".
  EXPECT_EQ(fail_msg("[a]\nk = 1\nk = 2\n").rfind("t.toml:3: ", 0), 0u);
  EXPECT_EQ(fail_msg("[a]\n\n[a]\n").rfind("t.toml:3: ", 0), 0u);
}

TEST(TomlTest, RejectsMalformedConstructs) {
  EXPECT_NE(fail_msg("k = 1\n").find("before any [section]"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = 1\nk = 2\n").find("duplicate key"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = 1\n[s]\n").find("duplicate section"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\njust words\n").find("expected 'key = value'"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk =\n").find("missing value"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = \"open\n").find("unterminated string"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = \"a\\n\"\n").find("unsupported escape"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = \"a\" b\n").find("trailing characters"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = bareword\n").find("expected a value"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = [1,\n2]\n").find("unterminated array"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = [1,,2]\n").find("empty array element"), std::string::npos);
  EXPECT_NE(fail_msg("[s\nk = 1\n").find("unterminated section header"), std::string::npos);
  EXPECT_NE(fail_msg("[s!]\n").find("malformed section name"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk! = 1\n").find("malformed key"), std::string::npos);
  EXPECT_NE(fail_msg("[s]\nk = 99999999999999999999\n").find("out of range"),
            std::string::npos);
}

TEST(TomlTest, MissingFileThrows) {
  EXPECT_THROW((void)parse_toml_file("/nonexistent/path.toml"), std::runtime_error);
}

}  // namespace
}  // namespace lintime::scenario
