// Golden tests pinning scenario expansion and execution semantics:
//
//  1. the checked-in corpus digests (scenarios/digests.txt) -- a silent
//     change to expansion (canonicalization, ordering, defaults) cannot
//     masquerade as a no-op;
//  2. byte-identity of the historical grids: the scenario files that
//     replaced the hard-coded campaign_runner grids must produce JSON
//     artifacts byte-identical to the seed-commit output (checked in under
//     tests/scenario/golden/);
//  3. 60-seed record equivalence for the new adversarial corpus scenarios:
//     every job replays byte-identically, including with the scheduler
//     flipped ring -> heap.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/sink.hpp"
#include "harness/runner.hpp"
#include "scenario/expand.hpp"
#include "scenario/scenario.hpp"
#include "sim/trace_io.hpp"

#ifndef LINTIME_SCENARIO_DIR
#define LINTIME_SCENARIO_DIR "scenarios"
#endif
#ifndef LINTIME_SCENARIO_GOLDEN_DIR
#define LINTIME_SCENARIO_GOLDEN_DIR "tests/scenario/golden"
#endif

namespace lintime::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ScenarioCampaign load(const std::string& name, const std::vector<AxisOverride>& ov = {}) {
  return expand(load_scenario_file(std::string(LINTIME_SCENARIO_DIR) + "/" + name + ".toml"),
                ov);
}

/// Runs the named scenario and returns the JSON artifact, exactly as
/// `campaign_runner --json` writes it.
std::string run_to_json(const std::string& name, const std::vector<AxisOverride>& ov = {}) {
  const auto campaign = load(name, ov);
  const auto result = campaign::run_campaign(campaign.spec);
  std::ostringstream os;
  campaign::write_json(os, result);
  return os.str();
}

TEST(ScenarioGoldenTest, CorpusDigestsMatchCheckedInFile) {
  const std::string dir = LINTIME_SCENARIO_DIR;
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".toml") names.push_back(entry.path().stem().string());
  }
  std::sort(names.begin(), names.end());
  ASSERT_GE(names.size(), 10u) << "scenario corpus went missing from " << dir;

  std::string computed;
  for (const std::string& name : names) {
    const auto campaign = load(name);
    computed += name + " " + campaign_digest(campaign) + " " +
                std::to_string(campaign.spec.jobs.size()) + "\n";
  }
  EXPECT_EQ(computed, read_file(dir + "/digests.txt"))
      << "expansion semantics changed; regenerate with campaign_runner --digests "
         "if intentional";
}

// The five historical grids, byte-identical to the seed-commit artifacts.
TEST(ScenarioGoldenTest, RobustnessGridByteIdentical) {
  EXPECT_EQ(run_to_json("robustness"),
            read_file(std::string(LINTIME_SCENARIO_GOLDEN_DIR) + "/robustness.json"));
}

TEST(ScenarioGoldenTest, TradeoffGridByteIdentical) {
  EXPECT_EQ(run_to_json("tradeoff"),
            read_file(std::string(LINTIME_SCENARIO_GOLDEN_DIR) + "/tradeoff.json"));
}

TEST(ScenarioGoldenTest, LatencyGridByteIdentical) {
  EXPECT_EQ(run_to_json("latency"),
            read_file(std::string(LINTIME_SCENARIO_GOLDEN_DIR) + "/latency.json"));
}

TEST(ScenarioGoldenTest, Table2BenchByteIdentical) {
  EXPECT_EQ(run_to_json("table2_queues"),
            read_file(std::string(LINTIME_SCENARIO_GOLDEN_DIR) + "/table2_queues.json"));
}

TEST(ScenarioGoldenTest, ServingGridByteIdenticalAt100k) {
  EXPECT_EQ(run_to_json("serving", {{"ops", {"100000"}}}),
            read_file(std::string(LINTIME_SCENARIO_GOLDEN_DIR) + "/serving_100k.json"));
}

/// Expands `name` twice with a 60-value seed axis (other axes pinned by
/// `extra` overrides), runs every job from both expansions -- the second
/// with the scheduler flipped to the binary heap -- and requires
/// byte-identical records.  Two independent expansions, because seeded
/// delay models are stateful and must not be reused across runs.
void check_sixty_seeds(const std::string& name, std::vector<AxisOverride> extra) {
  std::vector<std::string> seeds;
  for (int s = 1; s <= 60; ++s) seeds.push_back(std::to_string(s));
  extra.push_back({"seed", seeds});

  const auto a = load(name, extra);
  const auto b = load(name, extra);
  ASSERT_EQ(a.spec.jobs.size(), 60u);
  ASSERT_EQ(b.spec.jobs.size(), 60u);

  for (std::size_t i = 0; i < a.spec.jobs.size(); ++i) {
    const auto ra = harness::execute(*a.spec.jobs[i].type, a.spec.jobs[i].spec);
    harness::RunSpec flipped = b.spec.jobs[i].spec;
    flipped.scheduler = sim::SchedulerKind::kBinaryHeap;
    const auto rb = harness::execute(*b.spec.jobs[i].type, flipped);
    ASSERT_EQ(sim::record_to_string(ra.record), sim::record_to_string(rb.record))
        << name << " job " << a.spec.jobs[i].name
        << " diverged across replays / schedulers";
  }
}

TEST(ScenarioGoldenTest, CrashScenarioSixtySeedDeterminism) {
  check_sixty_seeds("crash_mr", {{"xfrac", {"1"}}});
}

TEST(ScenarioGoldenTest, AdversaryMatrixSixtySeedDeterminism) {
  check_sixty_seeds("adversary_matrix", {{"xfrac", {"0.5"}}});
}

TEST(ScenarioGoldenTest, PartitionHealSixtySeedDeterminism) {
  check_sixty_seeds("partition_heal", {});
}

}  // namespace
}  // namespace lintime::scenario
