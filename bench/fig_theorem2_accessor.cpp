// Theorem 2 constructions (the in-text run of Section 3.1): the classic
// shifting argument for the u/4 pure-accessor bound, executed for four
// accessor/mutator pairs.  Each experiment runs the unsafe algorithm live
// (run R1, linearizable), shifts p0/p1 by +-u/4 around the transition index
// j, re-verifies admissibility, and lets the checker certify the shifted
// run R2 is not linearizable -- while standard Algorithm 1 survives both.

#include <cstdio>

#include "adt/queue_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using harness::ScriptOp;

  const auto params = bench::default_params();

  std::printf("Theorem 2 shifting constructions (|AOP| >= u/4 = %g)\n\n", params.u / 4);

  {
    adt::RmwRegisterType reg;
    shift::Theorem2Spec spec;
    spec.aop = "read";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "fetch_add";
    spec.mutator_arg = Value{5};
    bench::print_experiment(shift::theorem2_pure_accessor(reg, spec, params));
  }
  {
    adt::QueueType queue;
    shift::Theorem2Spec spec;
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "dequeue";
    spec.mutator_arg = Value::nil();
    spec.rho = {ScriptOp{"enqueue", Value{1}}};
    bench::print_experiment(shift::theorem2_pure_accessor(queue, spec, params));
  }
  {
    adt::StackType st;
    shift::Theorem2Spec spec;
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "pop";
    spec.mutator_arg = Value::nil();
    spec.rho = {ScriptOp{"push", Value{1}}};
    bench::print_experiment(shift::theorem2_pure_accessor(st, spec, params));
  }
  {
    adt::TreeType tree;
    shift::Theorem2Spec spec;
    spec.aop = "depth";
    spec.aop_arg = Value{4};
    spec.mutator_op = "move";
    spec.mutator_arg = adt::TreeType::edge(1, 4);
    spec.rho = {ScriptOp{"insert", adt::TreeType::edge(0, 1)},
                ScriptOp{"move", adt::TreeType::edge(0, 4)}};
    bench::print_experiment(shift::theorem2_pure_accessor(tree, spec, params));
  }

  // Sensitivity: the construction as a function of the unsafe latency
  // fraction -- it must break for every fraction < 1.
  std::printf("sensitivity sweep (unsafe |AOP| as a fraction of u/4):\n");
  for (const double fraction : {0.2, 0.5, 0.8, 0.95}) {
    adt::RmwRegisterType reg;
    shift::Theorem2Spec spec;
    spec.aop = "read";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "fetch_add";
    spec.mutator_arg = Value{5};
    spec.unsafe_fraction = fraction;
    const auto r = shift::theorem2_pure_accessor(reg, spec, params);
    std::printf("  fraction %.2f: |AOP| = %-6g violated=%s safe=%s\n", fraction,
                r.unsafe_latency, r.unsafe_violated ? "YES" : "no",
                r.safe_survived ? "YES" : "no");
  }
  return 0;
}
