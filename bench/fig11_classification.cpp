// Reproduces Figure 11: the relationship between the paper's algebraic
// operation classes and the functional AOP/MOP/OOP classification, computed
// empirically for every operation of every shipped data type by the bounded
// exhaustive classifier.

#include <cstdio>

#include "adt/classify.hpp"
#include "adt/counter_type.hpp"
#include "adt/deque_type.hpp"
#include "adt/max_register_type.hpp"
#include "adt/pool_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"

int main() {
  using namespace lintime::adt;

  const RegisterType reg;
  const RmwRegisterType rmw;
  const QueueType queue;
  const StackType st;
  const TreeType tree;
  const SetType set;
  const CounterType ctr;
  const PoolType pool;
  const MaxRegisterType maxreg;
  const DequeType deque;
  const DataType* types[] = {&reg, &rmw, &queue, &st, &tree, &set, &ctr, &pool, &maxreg, &deque};

  std::printf("Figure 11: empirical classification of every operation\n");
  std::printf("(last-sens column: largest k <= 4 with a witness; bounds per Theorem 3 are\n");
  std::printf(" (1-1/k)u, extending to k = n for operations whose witness scales)\n\n");
  std::printf("%-12s %-14s %-5s %-9s %-11s %-6s %-10s %-9s %-9s\n", "type", "operation",
              "class", "mutator", "overwriter", "accr", "transposb", "last-sens", "pair-free");
  std::printf("%s\n", std::string(94, '-').c_str());

  for (const auto* type : types) {
    for (const auto& c : classify_all(*type)) {
      std::printf("%-12s %-14s %-5s %-9s %-11s %-6s %-10s %-9d %-9s\n", type->name().c_str(),
                  c.op.c_str(), to_string(c.implied_category()), c.mutator ? "yes" : "no",
                  c.mutator ? (c.overwriter ? "yes" : "no") : "-", c.accessor ? "yes" : "no",
                  c.transposable ? "yes" : "no", c.last_sensitive_k, c.pair_free ? "yes" : "no");
    }
  }

  std::printf("\nTheorem 5 applicability (transposable mutator + discriminating pure accessor):\n");
  struct Pair {
    const DataType* type;
    const char* op;
    const char* aop;
  };
  const Pair pairs[] = {
      {&queue, "enqueue", "peek"}, {&st, "push", "peek"},      {&tree, "insert", "depth"},
      {&tree, "move", "depth"},    {&tree, "remove", "depth"}, {&reg, "write", "read"},
      {&deque, "push_back", "front"}, {&deque, "push_front", "front"},
  };
  for (const auto& p : pairs) {
    const auto witness = find_theorem5_witness(*p.type, p.op, p.aop);
    std::printf("  %-10s %s + %s: %s", p.type->name().c_str(), p.op, p.aop,
                witness ? "witness found" : "no witness");
    if (witness) {
      std::printf("  (rho=\"%s\", op0=%s, op1=%s)", to_string(witness->rho).c_str(),
                  witness->op0.to_string().c_str(), witness->op1.to_string().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
