#pragma once
// Shared utilities for the table/figure reproduction binaries: canonical
// parameters, worst-case latency measurement under the max-delay adversary,
// and fixed-width table printing in the shape of the paper's Tables 1-5.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "campaign/executor.hpp"
#include "harness/runner.hpp"
#include "shift/theorems.hpp"

namespace lintime::bench {

/// The canonical model instantiation used throughout the benches:
/// n = 5, d = 10, u = 2, eps = (1 - 1/n) u = 1.6  =>  m = min{eps,u,d/3} = 1.6.
[[nodiscard]] sim::ModelParams default_params();

/// Worst-case measured latency of one operation under the max-delay
/// adversary: a prefix `rho` runs at p0, then `op` is invoked at p1 after
/// quiescence.  X is Algorithm 1's tradeoff parameter (ignored by the
/// baselines).
struct MeasureSpec {
  std::string op;
  adt::Value arg;
  std::vector<harness::ScriptOp> rho;
  double X = 0;
  harness::AlgoKind algo = harness::AlgoKind::kAlgorithmOne;
};
[[nodiscard]] double measure_worst_latency(const adt::DataType& type, const MeasureSpec& spec,
                                           const sim::ModelParams& params);

/// Builds the harness::RunSpec that measure_worst_latency executes (the
/// campaign job shape shared by the table benches and campaign_runner).
[[nodiscard]] harness::RunSpec worst_latency_run(const MeasureSpec& spec,
                                                 const sim::ModelParams& params);

/// A batch of worst-case latency measurements executed as one campaign:
/// queue measurements with add() (each returns a handle), run() them all --
/// in parallel when `jobs` != 1 -- then read each latency(handle).  Results
/// are keyed by handle, so they are identical for any worker count.
class MeasureBatch {
 public:
  /// `params` is the default model for add(); the campaign `name` labels
  /// sink output when the batch is exported.
  explicit MeasureBatch(sim::ModelParams params, std::string name = "measure-batch");

  /// Queues one measurement against the batch default params.
  std::size_t add(const adt::DataType& type, MeasureSpec spec);
  /// Queues one measurement with job-specific model params.
  std::size_t add(const adt::DataType& type, MeasureSpec spec, const sim::ModelParams& params);

  /// Executes all queued jobs (0 = hardware concurrency).  Call once.
  void run(int jobs = 0);

  /// Worst-case latency of the handle's measured op (-1 if it never
  /// completed).  Only valid after run().
  [[nodiscard]] double latency(std::size_t handle) const;

  /// The underlying campaign result (for JSON/CSV export).  Valid after run().
  [[nodiscard]] const campaign::CampaignResult& result() const;

 private:
  sim::ModelParams default_params_;
  campaign::CampaignSpec spec_;
  std::vector<std::string> measured_ops_;  ///< op name per handle
  std::optional<campaign::CampaignResult> result_;
};

/// One row of a paper-style bounds table.
struct TableRow {
  std::string operation;
  std::string prev_lower;   ///< the paper's "Previous Lower Bound" column
  std::string new_lower;    ///< the paper's "New Lower Bound" column
  std::string new_upper;    ///< the paper's "New Upper Bound" column
  double measured_ours = -1;     ///< Algorithm 1, at the row's favourable X
  double measured_central = -1; ///< centralized baseline
  std::string note;
};

/// Prints the table with a header detailing the model parameters.
void print_table(const std::string& title, const sim::ModelParams& params,
                 const std::vector<TableRow>& rows);

/// Prints one theorem experiment outcome (the "lower bound demonstrated"
/// block under each table).
void print_experiment(const shift::ExperimentResult& result);

/// Formats a double with trailing-zero trimming.
[[nodiscard]] std::string fmt(double v);

}  // namespace lintime::bench
