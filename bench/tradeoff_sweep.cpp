// The X tradeoff curve of Section 5.1.2 (and the "Write + Read" rows of the
// tables): measured |AOP|, |MOP|, |OOP| as X sweeps [0, d-eps], for several
// n, against the centralized and all-OOP baselines.  The AOP and MOP curves
// cross at X = (d-eps)/2; their sum is constant at d+eps, matching the
// tables' sum rows.

#include <cstdio>

#include "adt/queue_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::MeasureSpec;
  using harness::AlgoKind;
  using harness::ScriptOp;

  adt::QueueType queue;

  for (const int n : {3, 5, 8}) {
    sim::ModelParams params{n, 10.0, 2.0, 0.0};
    params.eps = params.optimal_eps();

    std::printf("n=%d, d=%g, u=%g, eps=%g\n", n, params.d, params.u, params.eps);
    std::printf("%8s  %10s  %10s  %10s  %12s\n", "X", "AOP(peek)", "MOP(enq)", "OOP(deq)",
                "AOP+MOP sum");

    const int steps = 8;
    for (int i = 0; i <= steps; ++i) {
      const double X = (params.d - params.eps) * i / steps;
      MeasureSpec aop{"peek", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, X,
                      AlgoKind::kAlgorithmOne};
      MeasureSpec mop{"enqueue", Value{1}, {}, X, AlgoKind::kAlgorithmOne};
      MeasureSpec oop{"dequeue", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, X,
                      AlgoKind::kAlgorithmOne};
      const double a = bench::measure_worst_latency(queue, aop, params);
      const double m = bench::measure_worst_latency(queue, mop, params);
      const double o = bench::measure_worst_latency(queue, oop, params);
      std::printf("%8.2f  %10.2f  %10.2f  %10.2f  %12.2f\n", X, a, m, o, a + m);
    }

    MeasureSpec central{"dequeue", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, 0,
                        AlgoKind::kCentralized};
    MeasureSpec alloop{"dequeue", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, 0,
                       AlgoKind::kAllOop};
    std::printf("  baselines: centralized dequeue = %.2f (2d = %g), all-OOP dequeue = %.2f "
                "(d+eps = %g)\n\n",
                bench::measure_worst_latency(queue, central, params), 2 * params.d,
                bench::measure_worst_latency(queue, alloop, params), params.d + params.eps);
  }
  return 0;
}
