// The X tradeoff curve of Section 5.1.2 (and the "Write + Read" rows of the
// tables): measured |AOP|, |MOP|, |OOP| as X sweeps [0, d-eps], for several
// n, against the centralized and all-OOP baselines.  The AOP and MOP curves
// cross at X = (d-eps)/2; their sum is constant at d+eps, matching the
// tables' sum rows.
//
// All measurements run as ONE campaign batch (bench::MeasureBatch): the
// (n, X, class) grid plus the baseline probes are enumerated up front and
// executed on the campaign worker pool, then the same printed table is
// rendered from the indexed results.

#include <cstdio>
#include <map>
#include <vector>

#include "adt/queue_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::MeasureSpec;
  using harness::AlgoKind;
  using harness::ScriptOp;

  adt::QueueType queue;
  const std::vector<int> ns = {3, 5, 8};
  const int steps = 8;

  bench::MeasureBatch batch(bench::default_params(), "tradeoff-sweep");

  struct Row {
    double X;
    std::size_t aop, mop, oop;  ///< batch handles
  };
  std::map<int, std::vector<Row>> rows;          // by n
  std::map<int, std::pair<std::size_t, std::size_t>> baselines;  // centralized, all-OOP

  for (const int n : ns) {
    sim::ModelParams params{n, 10.0, 2.0, 0.0};
    params.eps = params.optimal_eps();

    for (int i = 0; i <= steps; ++i) {
      const double X = (params.d - params.eps) * i / steps;
      MeasureSpec aop{"peek", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, X,
                      AlgoKind::kAlgorithmOne};
      MeasureSpec mop{"enqueue", Value{1}, {}, X, AlgoKind::kAlgorithmOne};
      MeasureSpec oop{"dequeue", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, X,
                      AlgoKind::kAlgorithmOne};
      rows[n].push_back(Row{X, batch.add(queue, aop, params), batch.add(queue, mop, params),
                            batch.add(queue, oop, params)});
    }

    MeasureSpec central{"dequeue", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, 0,
                        AlgoKind::kCentralized};
    MeasureSpec alloop{"dequeue", Value::nil(), {ScriptOp{"enqueue", Value{1}}}, 0,
                       AlgoKind::kAllOop};
    baselines[n] = {batch.add(queue, central, params), batch.add(queue, alloop, params)};
  }

  batch.run();

  for (const int n : ns) {
    sim::ModelParams params{n, 10.0, 2.0, 0.0};
    params.eps = params.optimal_eps();

    std::printf("n=%d, d=%g, u=%g, eps=%g\n", n, params.d, params.u, params.eps);
    std::printf("%8s  %10s  %10s  %10s  %12s\n", "X", "AOP(peek)", "MOP(enq)", "OOP(deq)",
                "AOP+MOP sum");
    for (const auto& row : rows[n]) {
      const double a = batch.latency(row.aop);
      const double m = batch.latency(row.mop);
      const double o = batch.latency(row.oop);
      std::printf("%8.2f  %10.2f  %10.2f  %10.2f  %12.2f\n", row.X, a, m, o, a + m);
    }
    std::printf("  baselines: centralized dequeue = %.2f (2d = %g), all-OOP dequeue = %.2f "
                "(d+eps = %g)\n\n",
                batch.latency(baselines[n].first), 2 * params.d,
                batch.latency(baselines[n].second), params.d + params.eps);
  }
  return 0;
}
