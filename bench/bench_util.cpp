#include "bench_util.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "campaign/executor.hpp"

namespace lintime::bench {

sim::ModelParams default_params() {
  sim::ModelParams p{5, 10.0, 2.0, 0.0};
  p.eps = p.optimal_eps();
  return p;
}

harness::RunSpec worst_latency_run(const MeasureSpec& spec, const sim::ModelParams& params) {
  harness::RunSpec run;
  run.params = params;
  run.algo = spec.algo;
  run.X = spec.X;
  run.delays = std::make_shared<sim::ConstantDelay>(params.d);

  // Prefix at p0, then the measured call at p1 well after quiescence.
  const double t =
      (static_cast<double>(spec.rho.size()) + 2.0) * (params.d + params.u + params.eps + 1.0);
  run.scripts.assign(static_cast<std::size_t>(params.n), {});
  run.scripts[0] = spec.rho;
  run.calls = {harness::Call{t, 1, spec.op, spec.arg}};
  return run;
}

namespace {

/// The measured instance is the one at p1.
double latency_at_p1(const sim::RunRecord& record, const std::string& op_name) {
  double latency = -1;
  for (const auto& op : record.ops) {
    if (op.proc == 1 && op.op == op_name) latency = op.latency();
  }
  return latency;
}

}  // namespace

double measure_worst_latency(const adt::DataType& type, const MeasureSpec& spec,
                             const sim::ModelParams& params) {
  const auto result = harness::execute(type, worst_latency_run(spec, params));
  return latency_at_p1(result.record, spec.op);
}

MeasureBatch::MeasureBatch(sim::ModelParams params, std::string name)
    : default_params_(params) {
  spec_.name = std::move(name);
}

std::size_t MeasureBatch::add(const adt::DataType& type, MeasureSpec spec) {
  return add(type, std::move(spec), default_params_);
}

std::size_t MeasureBatch::add(const adt::DataType& type, MeasureSpec spec,
                              const sim::ModelParams& params) {
  if (result_.has_value()) throw std::logic_error("MeasureBatch: add() after run()");
  const std::size_t handle = spec_.jobs.size();
  campaign::Job job;
  job.name = "#" + std::to_string(handle) + "/" + harness::to_string(spec.algo) + "/" + spec.op;
  job.tags = {{"algo", harness::to_string(spec.algo)},
              {"op", spec.op},
              {"X", fmt(spec.X)},
              {"n", std::to_string(params.n)}};
  job.type = &type;
  job.spec = worst_latency_run(spec, params);
  spec_.jobs.push_back(std::move(job));
  measured_ops_.push_back(spec.op);
  return handle;
}

void MeasureBatch::run(int jobs) {
  if (result_.has_value()) throw std::logic_error("MeasureBatch: run() called twice");
  campaign::ExecutorOptions options;
  options.jobs = jobs;
  options.keep_records = true;  // latency extraction needs the p1 instance
  result_ = campaign::run_campaign(spec_, options);
}

double MeasureBatch::latency(std::size_t handle) const {
  if (!result_.has_value()) throw std::logic_error("MeasureBatch: latency() before run()");
  const auto& job = result_->jobs.at(handle);
  if (!job.ok) {
    throw std::runtime_error("MeasureBatch: job '" + job.name + "' failed: " + job.error);
  }
  return latency_at_p1(job.run.record, measured_ops_.at(handle));
}

const campaign::CampaignResult& MeasureBatch::result() const {
  if (!result_.has_value()) throw std::logic_error("MeasureBatch: result() before run()");
  return *result_;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void print_table(const std::string& title, const sim::ModelParams& params,
                 const std::vector<TableRow>& rows) {
  std::printf("%s\n", title.c_str());
  std::printf("model: n=%d, d=%g, u=%g, eps=(1-1/n)u=%g, m=min{eps,u,d/3}=%g\n", params.n,
              params.d, params.u, params.eps, params.m());
  std::printf("%-18s | %-14s | %-26s | %-16s | %-12s | %-12s\n", "Operation", "Prev LB",
              "New LB", "New UB", "Meas. Alg1", "Meas. Centr");
  std::printf("%s\n", std::string(112, '-').c_str());
  for (const auto& row : rows) {
    std::printf("%-18s | %-14s | %-26s | %-16s | %-12s | %-12s\n", row.operation.c_str(),
                row.prev_lower.c_str(), row.new_lower.c_str(), row.new_upper.c_str(),
                row.measured_ours < 0 ? "-" : fmt(row.measured_ours).c_str(),
                row.measured_central < 0 ? "-" : fmt(row.measured_central).c_str());
    if (!row.note.empty()) std::printf("%-18s   note: %s\n", "", row.note.c_str());
  }
  std::printf("\n");
}

void print_experiment(const shift::ExperimentResult& result) {
  std::printf("[lower-bound experiment] %s\n", result.name.c_str());
  std::printf("  bound = %s, unsafe |OP| = %s -> unsafe violated: %s, Algorithm 1 survived: %s\n",
              fmt(result.bound).c_str(), fmt(result.unsafe_latency).c_str(),
              result.unsafe_violated ? "YES" : "no", result.safe_survived ? "YES" : "no");
  std::istringstream details(result.details);
  std::string line;
  while (std::getline(details, line)) {
    std::printf("    %s\n", line.c_str());
  }
  std::printf("\n");
}

}  // namespace lintime::bench
