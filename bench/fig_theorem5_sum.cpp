// Theorem 5 constructions (Figures 8-10): the d + min{eps,u,d/3} bound on
// |OP| + |AOP| for a transposable mutator and a discriminating pure
// accessor.  Runs the live violation for the paper's example pair
// (enqueue + peek) and for tree insert + depth, prints the discriminator
// witnesses found by the classifier, and mechanically verifies the proof's
// shift-and-chop bookkeeping (single invalid edge p1->p0 = d-2m, Lemma 2
// validity, Claim 8 survival of the accessors).

#include <cstdio>

#include "adt/classify.hpp"
#include "adt/queue_type.hpp"
#include "adt/tree_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  std::printf("Theorem 5 constructions: |OP| + |AOP| >= d + m = %g\n\n",
              params.d + params.m());

  adt::QueueType queue;
  adt::TreeType tree;

  // Discriminator witnesses (the theorem's hypotheses).
  for (const auto& [type, op, aop] :
       {std::tuple<const adt::DataType*, const char*, const char*>{&queue, "enqueue", "peek"},
        {&tree, "insert", "depth"}}) {
    const auto w = adt::find_theorem5_witness(*type, op, aop);
    std::printf("hypotheses for %s::%s + %s: %s\n", type->name().c_str(), op, aop,
                w ? "witness found" : "NO witness");
    if (w) {
      std::printf("  rho = \"%s\", op0 = %s, op1 = %s\n", adt::to_string(w->rho).c_str(),
                  w->op0.to_string().c_str(), w->op1.to_string().c_str());
      std::printf("  discriminator a: arg=%s ret1=%s ret2=%s\n", w->disc_a.arg.to_string().c_str(),
                  w->disc_a.ret1.to_string().c_str(), w->disc_a.ret2.to_string().c_str());
    }
  }
  std::printf("\n");

  {
    shift::Theorem5Spec spec;
    spec.op = "enqueue";
    spec.arg0 = Value{1};
    spec.arg1 = Value{2};
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    bench::print_experiment(shift::theorem5_sum(queue, spec, params));
  }
  {
    shift::Theorem5Spec spec;
    spec.op = "insert";
    spec.arg0 = adt::TreeType::edge(0, 3);
    spec.arg1 = adt::TreeType::edge(1, 3);
    spec.aop = "depth";
    spec.aop_arg = Value{3};
    spec.rho = {ScriptOp{"insert", adt::TreeType::edge(0, 1)}};
    bench::print_experiment(shift::theorem5_sum(tree, spec, params));
  }

  // The full pipeline (R1, the shifted+repaired R2, and R3 = R2 minus p0's
  // mutator), with the view-indistinguishability claim checked on records.
  {
    shift::Theorem5Spec spec;
    spec.op = "enqueue";
    spec.arg0 = Value{1};
    spec.arg1 = Value{2};
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    const auto pipeline = shift::theorem5_full_pipeline(queue, spec, params);
    std::printf("[full pipeline R1..R3] queue enqueue+peek: %s\n%s\n",
                pipeline.ok() ? "ALL CLAIMS HOLD, contradiction exhibited" : "INCOMPLETE",
                pipeline.details.c_str());
  }

  // Shift-and-chop bookkeeping needs 2m > u; use d=12, u=3, eps=2 (m=2).
  {
    sim::ModelParams chop_params{3, 12.0, 3.0, 2.0};
    shift::Theorem5Spec spec;
    spec.op = "enqueue";
    spec.arg0 = Value{1};
    spec.arg1 = Value{2};
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    const auto demo = shift::theorem5_chop_demo(queue, spec, chop_params);
    std::printf("[shift-and-chop bookkeeping] queue enqueue+peek (d=12, u=3, eps=2, m=2)\n");
    std::printf("  single invalid edge: %s, Lemma 2 valid: %s, accessors survive: %s\n",
                demo.one_invalid_edge ? "YES" : "no", demo.chop_valid ? "YES" : "no",
                demo.op_survives_chop ? "YES" : "no");
    std::printf("%s\n", demo.details.c_str());
  }
  return 0;
}
