// Reproduces Table 3: Operation Bounds for Stacks (Push, Pop, Peek,
// Push + Peek).  Note the paper's point that Push + Peek has NO Theorem 5
// bound (peek depends only on the last push), which the discriminator
// search verifies mechanically here.

#include <cstdio>

#include "adt/classify.hpp"
#include "adt/stack_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::fmt;
  using bench::MeasureSpec;
  using harness::AlgoKind;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  const double eps = params.eps;
  const double d = params.d;
  const double u = params.u;
  const double m = params.m();
  adt::StackType st;

  const std::vector<ScriptOp> seeded = {ScriptOp{"push", Value{7}}, ScriptOp{"push", Value{8}}};

  // One campaign batch for all measured cells (see table1_registers.cpp).
  bench::MeasureBatch batch(params, "table3-stacks");
  auto ours = [&](const char* op, Value arg, double X, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.X = X;
    s.rho = std::move(rho);
    return batch.add(st, std::move(s));
  };
  auto central = [&](const char* op, Value arg, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.algo = AlgoKind::kCentralized;
    s.rho = std::move(rho);
    return batch.add(st, std::move(s));
  };

  const auto h_push = ours("push", Value{1}, 0.0);
  const auto h_push_c = central("push", Value{1});
  const auto h_pop = ours("pop", Value::nil(), 0.0, seeded);
  const auto h_pop_c = central("pop", Value::nil(), seeded);
  const auto h_peek = ours("peek", Value::nil(), d - eps, seeded);
  const auto h_peek_c = central("peek", Value::nil(), seeded);
  const auto h_peek_x0 = ours("peek", Value::nil(), 0.0, seeded);
  batch.run();
  auto L = [&](std::size_t h) { return batch.latency(h); };

  std::vector<bench::TableRow> rows;
  rows.push_back({"Push", "u/2 [3]",
                  "(1-1/n)u = " + fmt((1.0 - 1.0 / params.n) * u) + " (Thm 3)",
                  "eps = " + fmt(eps) + " (X=0)", L(h_push),
                  L(h_push_c), ""});
  rows.push_back({"Pop", "d [3]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 4)",
                  "d+eps = " + fmt(d + eps), L(h_pop), L(h_pop_c), ""});
  rows.push_back({"Peek", "-", "u/4 = " + fmt(u / 4) + " (Thm 2)",
                  "eps = " + fmt(eps) + " (X=d-eps)", L(h_peek),
                  L(h_peek_c), "first lower bound for Peek"});
  rows.push_back({"Push + Peek", "d [13]", "- (Thm 5 inapplicable)", "d+eps = " + fmt(d + eps),
                  L(h_push) + L(h_peek_x0),
                  L(h_push_c) + L(h_peek_c),
                  "peek depends only on the last push"});

  bench::print_table("Table 3: Operation Bounds for Stacks", params, rows);

  {
    shift::Theorem3Spec spec;
    spec.op = "push";
    spec.args = {Value{1}, Value{2}, Value{3}, Value{4}, Value{5}};
    spec.probe = std::vector<ScriptOp>(5, ScriptOp{"pop", Value::nil()});
    bench::print_experiment(shift::theorem3_last_sensitive(st, spec, params));
  }
  {
    shift::Theorem4Spec spec;
    spec.op = "pop";
    spec.arg0 = Value::nil();
    spec.arg1 = Value::nil();
    spec.rho = {ScriptOp{"push", Value{7}}};
    bench::print_experiment(shift::theorem4_pair_free(st, spec, params));
  }
  {
    shift::Theorem2Spec spec;
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "pop";
    spec.mutator_arg = Value::nil();
    spec.rho = {ScriptOp{"push", Value{1}}};
    bench::print_experiment(shift::theorem2_pure_accessor(st, spec, params));
  }

  // The paper's observation before Theorem 5, verified mechanically: no
  // discriminator witness exists for (push, peek).
  const auto witness = adt::find_theorem5_witness(st, "push", "peek");
  std::printf("[Theorem 5 applicability] push+peek discriminator witness: %s\n",
              witness.has_value() ? "FOUND (unexpected!)" : "none (as the paper argues)");
  return 0;
}
