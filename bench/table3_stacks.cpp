// Reproduces Table 3: Operation Bounds for Stacks (Push, Pop, Peek,
// Push + Peek).  Note the paper's point that Push + Peek has NO Theorem 5
// bound (peek depends only on the last push), which the discriminator
// search verifies mechanically here.

#include <cstdio>

#include "adt/classify.hpp"
#include "adt/stack_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::fmt;
  using bench::MeasureSpec;
  using harness::AlgoKind;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  const double eps = params.eps;
  const double d = params.d;
  const double u = params.u;
  const double m = params.m();
  adt::StackType st;

  const std::vector<ScriptOp> seeded = {ScriptOp{"push", Value{7}}, ScriptOp{"push", Value{8}}};

  auto ours = [&](const char* op, Value arg, double X, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.X = X;
    s.rho = std::move(rho);
    return bench::measure_worst_latency(st, s, params);
  };
  auto central = [&](const char* op, Value arg, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.algo = AlgoKind::kCentralized;
    s.rho = std::move(rho);
    return bench::measure_worst_latency(st, s, params);
  };

  std::vector<bench::TableRow> rows;
  rows.push_back({"Push", "u/2 [3]",
                  "(1-1/n)u = " + fmt((1.0 - 1.0 / params.n) * u) + " (Thm 3)",
                  "eps = " + fmt(eps) + " (X=0)", ours("push", Value{1}, 0.0),
                  central("push", Value{1}), ""});
  rows.push_back({"Pop", "d [3]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 4)",
                  "d+eps = " + fmt(d + eps), ours("pop", Value::nil(), 0.0, seeded),
                  central("pop", Value::nil(), seeded), ""});
  rows.push_back({"Peek", "-", "u/4 = " + fmt(u / 4) + " (Thm 2)",
                  "eps = " + fmt(eps) + " (X=d-eps)", ours("peek", Value::nil(), d - eps, seeded),
                  central("peek", Value::nil(), seeded), "first lower bound for Peek"});
  rows.push_back({"Push + Peek", "d [13]", "- (Thm 5 inapplicable)", "d+eps = " + fmt(d + eps),
                  ours("push", Value{1}, 0.0) + ours("peek", Value::nil(), 0.0, seeded),
                  central("push", Value{1}) + central("peek", Value::nil(), seeded),
                  "peek depends only on the last push"});

  bench::print_table("Table 3: Operation Bounds for Stacks", params, rows);

  {
    shift::Theorem3Spec spec;
    spec.op = "push";
    spec.args = {Value{1}, Value{2}, Value{3}, Value{4}, Value{5}};
    spec.probe = std::vector<ScriptOp>(5, ScriptOp{"pop", Value::nil()});
    bench::print_experiment(shift::theorem3_last_sensitive(st, spec, params));
  }
  {
    shift::Theorem4Spec spec;
    spec.op = "pop";
    spec.arg0 = Value::nil();
    spec.arg1 = Value::nil();
    spec.rho = {ScriptOp{"push", Value{7}}};
    bench::print_experiment(shift::theorem4_pair_free(st, spec, params));
  }
  {
    shift::Theorem2Spec spec;
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "pop";
    spec.mutator_arg = Value::nil();
    spec.rho = {ScriptOp{"push", Value{1}}};
    bench::print_experiment(shift::theorem2_pure_accessor(st, spec, params));
  }

  // The paper's observation before Theorem 5, verified mechanically: no
  // discriminator witness exists for (push, peek).
  const auto witness = adt::find_theorem5_witness(st, "push", "peek");
  std::printf("[Theorem 5 applicability] push+peek discriminator witness: %s\n",
              witness.has_value() ? "FOUND (unexpected!)" : "none (as the paper argues)");
  return 0;
}
