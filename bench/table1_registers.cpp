// Reproduces Table 1: Operation Bounds for Read/Write/Read-Modify-Write
// Registers.  For each row, the paper's bound columns are printed alongside
// the measured worst-case latency of Algorithm 1 (at the row's favourable X)
// and of the centralized folklore baseline; the new-lower-bound rows are
// backed by live adversary experiments.

#include <cstdio>

#include "adt/rmw_register_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::fmt;
  using bench::MeasureSpec;
  using harness::AlgoKind;

  const auto params = bench::default_params();
  const double eps = params.eps;
  const double d = params.d;
  const double u = params.u;
  const double m = params.m();
  adt::RmwRegisterType reg;

  // All measurements run as one campaign batch: queue handles first, run the
  // batch on the worker pool, then render the rows from the results.
  bench::MeasureBatch batch(params, "table1-registers");
  auto ours = [&](const char* op, Value arg, double X) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.X = X;
    return batch.add(reg, std::move(s));
  };
  auto central = [&](const char* op, Value arg) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.algo = AlgoKind::kCentralized;
    return batch.add(reg, std::move(s));
  };

  const auto h_rmw = ours("fetch_add", Value{1}, 0.0);
  const auto h_rmw_c = central("fetch_add", Value{1});
  const auto h_write = ours("write", Value{1}, 0.0);
  const auto h_write_c = central("write", Value{1});
  const auto h_read = ours("read", Value::nil(), d - eps);
  const auto h_read_c = central("read", Value::nil());
  const auto h_read_x0 = ours("read", Value::nil(), 0.0);
  batch.run();
  auto L = [&](std::size_t h) { return batch.latency(h); };

  std::vector<bench::TableRow> rows;
  rows.push_back({"Read-Modify-Write", "d [13]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 4)",
                  "d+eps = " + fmt(d + eps), L(h_rmw), L(h_rmw_c),
                  ""});
  rows.push_back({"Write", "u/2 [3]", "(1-1/n)u = " + fmt((1.0 - 1.0 / params.n) * u) + " (Thm 3)",
                  "eps = " + fmt(eps) + " (X=0)", L(h_write), L(h_write_c), ""});
  rows.push_back({"Read", "u/4 [3]", "-", "eps = " + fmt(eps) + " (X=d-eps)",
                  L(h_read), L(h_read_c), ""});
  rows.push_back({"Write + Read", "d [13]", "-", "d+eps = " + fmt(d + eps),
                  L(h_write) + L(h_read_x0),
                  L(h_write_c) + L(h_read_c),
                  "sum is X-invariant: (X+eps) + (d-X) = d+eps"});

  bench::print_table("Table 1: Operation Bounds for Read/Write/RMW Registers", params, rows);

  // Lower-bound experiments backing the "New LB" column.
  {
    shift::Theorem4Spec spec;
    spec.op = "fetch_add";
    spec.arg0 = Value{100};
    spec.arg1 = Value{200};
    bench::print_experiment(shift::theorem4_pair_free(reg, spec, params));
  }
  {
    shift::Theorem3Spec spec;
    spec.op = "write";
    spec.args = {Value{10}, Value{20}, Value{30}, Value{40}, Value{50}};
    spec.probe = {harness::ScriptOp{"read", Value::nil()}};
    bench::print_experiment(shift::theorem3_last_sensitive(reg, spec, params));
  }
  {
    shift::Theorem2Spec spec;
    spec.aop = "read";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "fetch_add";
    spec.mutator_arg = Value{5};
    bench::print_experiment(shift::theorem2_pure_accessor(reg, spec, params));
  }
  {
    // The "Write + Read" row's d bound (Section 6.1 generalization of
    // Lipton-Sandberg to any interfering pair).
    shift::InterferenceSpec spec;
    spec.mutator_op = "write";
    spec.mutator_arg = Value{5};
    spec.aop = "read";
    spec.aop_arg = Value::nil();
    bench::print_experiment(shift::interference_sum(reg, spec, params));
  }
  return 0;
}
