// Theorem 4 constructions (Figures 2-7): the shift-and-chop technique for
// the d + min{eps,u,d/3} pair-free bound.  Prints the proof's delay matrix
// D^1 (Figure 2), runs the live adversarial run R4 against the unsafe
// algorithm (|OOP| = d + m/2) for three pair-free operations, and then
// mechanically verifies the shift-and-chop bookkeeping of proof steps 2-3
// (Figures 3-4): exactly one invalid edge after the shift, Lemma 2's
// validity postconditions after the chop, and survival of p1's operation.

#include <cstdio>

#include "adt/counter_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/stack_type.hpp"
#include "bench_util.hpp"

namespace {

void print_chop(const lintime::shift::ChopDemoResult& demo, const char* label) {
  std::printf("[shift-and-chop bookkeeping] %s\n", label);
  std::printf("  single invalid edge: %s, Lemma 2 valid: %s, op survives chop: %s\n",
              demo.one_invalid_edge ? "YES" : "no", demo.chop_valid ? "YES" : "no",
              demo.op_survives_chop ? "YES" : "no");
  std::printf("%s\n", demo.details.c_str());
}

}  // namespace

int main() {
  using namespace lintime;
  using adt::Value;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  const double m = params.m();

  std::printf("Theorem 4 constructions: pair-free |OP| >= d + m = %g + %g\n\n", params.d, m);

  std::printf("delay matrix D^1 (Figure 2), m = %g:\n", m);
  std::printf("  into p0: d-m (except from p1: d); from p1: d-m (except to p0: d); rest: d\n\n");

  {
    adt::RmwRegisterType reg;
    shift::Theorem4Spec spec;
    spec.op = "fetch_add";
    spec.arg0 = Value{100};
    spec.arg1 = Value{200};
    bench::print_experiment(shift::theorem4_pair_free(reg, spec, params));
    print_chop(shift::theorem4_chop_demo(reg, spec, params), "RMW fetch_add");

    // The full five-run proof pipeline (Figures 3-7) with Claims 4 and 5
    // verified on the records.
    const auto pipeline = shift::theorem4_full_pipeline(reg, spec, params);
    std::printf("[full pipeline R1..R5] RMW fetch_add: %s\n%s\n",
                pipeline.ok() ? "ALL CLAIMS HOLD, contradiction exhibited" : "INCOMPLETE",
                pipeline.details.c_str());
  }
  {
    adt::QueueType queue;
    shift::Theorem4Spec spec;
    spec.op = "dequeue";
    spec.arg0 = Value::nil();
    spec.arg1 = Value::nil();
    spec.rho = {ScriptOp{"enqueue", Value{7}}};
    bench::print_experiment(shift::theorem4_pair_free(queue, spec, params));
    print_chop(shift::theorem4_chop_demo(queue, spec, params), "queue dequeue");
  }
  {
    adt::StackType st;
    shift::Theorem4Spec spec;
    spec.op = "pop";
    spec.arg0 = Value::nil();
    spec.arg1 = Value::nil();
    spec.rho = {ScriptOp{"push", Value{7}}};
    bench::print_experiment(shift::theorem4_pair_free(st, spec, params));
  }
  {
    adt::CounterType ctr;
    shift::Theorem4Spec spec;
    spec.op = "fetch_inc";
    spec.arg0 = Value::nil();
    spec.arg1 = Value::nil();
    bench::print_experiment(shift::theorem4_pair_free(ctr, spec, params));
  }
  return 0;
}
