// Theorem 3 constructions (Figure 1): the (1-1/k)u bound for last-sensitive
// mutators, swept over k = 2..n and over the data types of Tables 1-4.  The
// live runs realize the proof's shifted run R2: timestamps tie at t, the
// delay matrix is the shifted one from Claim 3, and the probe reveals that
// op_z took effect last although it finished first.

#include <cstdio>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using harness::ScriptOp;

  const auto params = bench::default_params();

  std::printf("Theorem 3 constructions: |OP| >= (1-1/k)u, u = %g\n\n", params.u);

  // k sweep on register writes.
  std::printf("k sweep (register write):\n");
  for (int k = 2; k <= params.n; ++k) {
    adt::RegisterType reg;
    shift::Theorem3Spec spec;
    spec.op = "write";
    for (int i = 0; i < k; ++i) spec.args.emplace_back(10 * (i + 1));
    spec.probe = {ScriptOp{"read", Value::nil()}};
    const auto r = theorem3_last_sensitive(reg, spec, params);
    std::printf("  k=%d: bound=(1-1/%d)u=%-5g unsafe=%-5g violated=%s safe=%s\n", k, k,
                r.bound, r.unsafe_latency, r.unsafe_violated ? "YES" : "no",
                r.safe_survived ? "YES" : "no");
  }
  std::printf("\n");

  // Per-type experiments at k = n (k = 2 for tree remove).
  {
    adt::QueueType queue;
    shift::Theorem3Spec spec;
    spec.op = "enqueue";
    spec.args = {Value{1}, Value{2}, Value{3}, Value{4}, Value{5}};
    spec.probe = std::vector<ScriptOp>(5, ScriptOp{"dequeue", Value::nil()});
    bench::print_experiment(theorem3_last_sensitive(queue, spec, params));
  }
  {
    adt::StackType st;
    shift::Theorem3Spec spec;
    spec.op = "push";
    spec.args = {Value{1}, Value{2}, Value{3}, Value{4}, Value{5}};
    spec.probe = std::vector<ScriptOp>(5, ScriptOp{"pop", Value::nil()});
    bench::print_experiment(theorem3_last_sensitive(st, spec, params));
  }
  {
    adt::TreeType tree;
    shift::Theorem3Spec spec;
    spec.op = "move";
    spec.args = {adt::TreeType::edge(0, 9), adt::TreeType::edge(1, 9),
                 adt::TreeType::edge(2, 9), adt::TreeType::edge(3, 9),
                 adt::TreeType::edge(4, 9)};
    spec.rho = {ScriptOp{"insert", adt::TreeType::edge(0, 1)},
                ScriptOp{"insert", adt::TreeType::edge(1, 2)},
                ScriptOp{"insert", adt::TreeType::edge(2, 3)},
                ScriptOp{"insert", adt::TreeType::edge(3, 4)}};
    spec.probe = {ScriptOp{"depth", Value{9}}};
    bench::print_experiment(theorem3_last_sensitive(tree, spec, params));
  }
  return 0;
}
