// Ablation benchmarks for the design decisions DESIGN.md calls out:
//   1. receipt-before-timer tie-breaking in the event loop -- flipping it
//      breaks Algorithm 1 at exact boundary ties;
//   2. the AOP timestamp back-date (Algorithm 1, line 2) -- removing it
//      produces torn reads;
//   3. checker memoization -- disabling it shows the raw search blow-up.

#include <chrono>
#include <cstdio>
#include <memory>

#include "adt/queue_type.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "sim/world.hpp"

namespace {

using namespace lintime;
using adt::Value;

sim::RunRecord boundary_schedule(bool timers_first) {
  adt::QueueType queue;
  sim::WorldConfig config;
  config.params = sim::ModelParams{3, 10.0, 2.0, 1.5};
  config.clock_offsets = {-1.5, 0.0, 0.0};
  config.timers_before_deliveries = timers_first;
  config.type = &queue;
  sim::World world(config, [&](sim::ProcId) {
    return std::make_unique<core::AlgorithmOneProcess>(
        queue, core::TimingPolicy::standard(config.params, 0.0));
  });
  const auto deq = queue.op_id("dequeue");
  world.invoke_at(0.0, 2, queue.op_id("enqueue"), Value{7});
  world.invoke_at(50.0, 1, deq, Value::nil());
  world.invoke_at(51.5, 0, deq, Value::nil());
  world.run();
  return world.record();
}

sim::RunRecord backdate_schedule(double backdate) {
  adt::QueueType queue;
  sim::WorldConfig config;
  config.params = sim::ModelParams{3, 10.0, 2.0, 1.5};
  config.delays = std::make_shared<sim::FunctionDelay>(
      [](sim::ProcId src, sim::ProcId, sim::Time, std::uint64_t) {
        return src == 1 ? 10.0 : 8.0;
      });
  core::TimingPolicy timing = core::TimingPolicy::standard(config.params, 2.0);
  timing.aop_backdate = backdate;
  config.type = &queue;
  sim::World world(config, [&](sim::ProcId) {
    return std::make_unique<core::AlgorithmOneProcess>(queue, timing);
  });
  const auto enq = queue.op_id("enqueue");
  const auto deq = queue.op_id("dequeue");
  world.invoke_at(49.0, 1, enq, Value{1});
  world.invoke_at(49.5, 2, enq, Value{2});
  world.invoke_at(50.0, 0, queue.op_id("peek"), Value::nil());
  world.invoke_at(90.0, 1, deq, Value::nil());
  world.invoke_at(92.0, 0, deq, Value::nil());
  world.run();
  return world.record();
}

}  // namespace

// detlint:capability(wall-clock): this ablation harness reports the checker's
// real runtime — the timings are the measurement, not simulated results; the
// checker verdicts themselves stay seed-pure.
int main() {
  adt::QueueType queue;

  std::printf("Ablation 1: event-loop tie-breaking at equal times\n");
  for (const bool timers_first : {false, true}) {
    const auto record = boundary_schedule(timers_first);
    const bool ok = lin::check_linearizability(queue, record).linearizable;
    std::printf("  %-24s -> %s\n",
                timers_first ? "timers before deliveries" : "deliveries first (model)",
                ok ? "linearizable" : "NOT linearizable (boundary tie broke Lemma 5)");
  }

  std::printf("\nAblation 2: AOP timestamp back-date (Algorithm 1 line 2, X = 2)\n");
  for (const double backdate : {2.0, 0.0}) {
    const auto record = backdate_schedule(backdate);
    const bool ok = lin::check_linearizability(queue, record).linearizable;
    std::printf("  backdate = %-4g -> peek = %-4s %s\n", backdate,
                record.ops[2].ret.to_string().c_str(),
                ok ? "(linearizable)" : "(TORN READ: not linearizable)");
  }

  std::printf("\nAblation 3: checker memoization (unsatisfiable history: the search\n");
  std::printf("must exhaust all interleavings of concurrent enqueues)\n");
  std::printf("  %-6s %14s %14s %12s %12s\n", "ops", "memo nodes", "no-memo nodes", "memo us",
              "no-memo us");
  for (const int count : {5, 7, 9}) {
    std::vector<sim::OpRecord> h;
    for (int i = 0; i < count; ++i) {
      sim::OpRecord op;
      op.proc = i;  // all concurrent, distinct "processes"
      op.op = "enqueue";
      op.arg = Value{i % 2};
      op.ret = Value::nil();
      op.invoke_real = 0;
      op.response_real = 100;
      op.uid = static_cast<std::uint64_t>(i + 1);
      h.push_back(op);
    }
    // A dequeue that cannot be explained forces exhaustive search.
    sim::OpRecord poison;
    poison.proc = count;
    poison.op = "dequeue";
    poison.arg = Value::nil();
    poison.ret = Value{99};
    poison.invoke_real = 200;
    poison.response_real = 201;
    poison.uid = static_cast<std::uint64_t>(count + 1);
    h.push_back(poison);
    const auto t0 = std::chrono::steady_clock::now();
    const auto with = lin::check_linearizability(queue, h, {.memoize = true});
    const auto t1 = std::chrono::steady_clock::now();
    const auto without = lin::check_linearizability(queue, h, {.memoize = false});
    const auto t2 = std::chrono::steady_clock::now();
    std::printf("  %-6d %14zu %14zu %12lld %12lld\n", count, with.nodes_expanded,
                without.nodes_expanded,
                static_cast<long long>(
                    std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count()),
                static_cast<long long>(
                    std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1).count()));
  }
  return 0;
}
