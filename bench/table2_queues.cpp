// Reproduces Table 2: Operation Bounds for Queues (Enqueue, Dequeue, Peek,
// Enqueue + Peek), with the backing lower-bound experiments for Theorems
// 2, 3, 4 and 5.

#include <cstdio>

#include "adt/queue_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::fmt;
  using bench::MeasureSpec;
  using harness::AlgoKind;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  const double eps = params.eps;
  const double d = params.d;
  const double u = params.u;
  const double m = params.m();
  adt::QueueType queue;

  const std::vector<ScriptOp> seeded = {ScriptOp{"enqueue", Value{7}},
                                        ScriptOp{"enqueue", Value{8}}};

  auto ours = [&](const char* op, Value arg, double X, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.X = X;
    s.rho = std::move(rho);
    return bench::measure_worst_latency(queue, s, params);
  };
  auto central = [&](const char* op, Value arg, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.algo = AlgoKind::kCentralized;
    s.rho = std::move(rho);
    return bench::measure_worst_latency(queue, s, params);
  };

  std::vector<bench::TableRow> rows;
  rows.push_back({"Enqueue", "u/2 [3]", "(1-1/n)u = " + fmt((1.0 - 1.0 / params.n) * u) +
                  " (Thm 3)", "eps = " + fmt(eps) + " (X=0)", ours("enqueue", Value{1}, 0.0),
                  central("enqueue", Value{1}), ""});
  rows.push_back({"Dequeue", "d [3]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 4)",
                  "d+eps = " + fmt(d + eps), ours("dequeue", Value::nil(), 0.0, seeded),
                  central("dequeue", Value::nil(), seeded), ""});
  rows.push_back({"Peek", "-", "u/4 = " + fmt(u / 4) + " (Thm 2)",
                  "eps = " + fmt(eps) + " (X=d-eps)",
                  ours("peek", Value::nil(), d - eps, seeded),
                  central("peek", Value::nil(), seeded), "first lower bound for Peek"});
  rows.push_back({"Enqueue + Peek", "d [13]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 5)",
                  "d+eps = " + fmt(d + eps),
                  ours("enqueue", Value{1}, 0.0) + ours("peek", Value::nil(), 0.0, seeded),
                  central("enqueue", Value{1}) + central("peek", Value::nil(), seeded),
                  "sum is X-invariant"});

  bench::print_table("Table 2: Operation Bounds for Queues", params, rows);

  {
    shift::Theorem3Spec spec;
    spec.op = "enqueue";
    spec.args = {Value{1}, Value{2}, Value{3}, Value{4}, Value{5}};
    spec.probe = std::vector<ScriptOp>(5, ScriptOp{"dequeue", Value::nil()});
    bench::print_experiment(shift::theorem3_last_sensitive(queue, spec, params));
  }
  {
    shift::Theorem4Spec spec;
    spec.op = "dequeue";
    spec.arg0 = Value::nil();
    spec.arg1 = Value::nil();
    spec.rho = {ScriptOp{"enqueue", Value{7}}};
    bench::print_experiment(shift::theorem4_pair_free(queue, spec, params));
  }
  {
    shift::Theorem2Spec spec;
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "dequeue";
    spec.mutator_arg = Value::nil();
    spec.rho = {ScriptOp{"enqueue", Value{1}}};
    bench::print_experiment(shift::theorem2_pure_accessor(queue, spec, params));
  }
  {
    shift::Theorem5Spec spec;
    spec.op = "enqueue";
    spec.arg0 = Value{1};
    spec.arg1 = Value{2};
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    bench::print_experiment(shift::theorem5_sum(queue, spec, params));
  }
  return 0;
}
