// Reproduces Table 2: Operation Bounds for Queues (Enqueue, Dequeue, Peek,
// Enqueue + Peek), with the backing lower-bound experiments for Theorems
// 2, 3, 4 and 5.

#include <cstdio>

#include "adt/queue_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::fmt;
  using bench::MeasureSpec;
  using harness::AlgoKind;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  const double eps = params.eps;
  const double d = params.d;
  const double u = params.u;
  const double m = params.m();
  adt::QueueType queue;

  const std::vector<ScriptOp> seeded = {ScriptOp{"enqueue", Value{7}},
                                        ScriptOp{"enqueue", Value{8}}};

  // One campaign batch for all measured cells (see table1_registers.cpp).
  bench::MeasureBatch batch(params, "table2-queues");
  auto ours = [&](const char* op, Value arg, double X, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.X = X;
    s.rho = std::move(rho);
    return batch.add(queue, std::move(s));
  };
  auto central = [&](const char* op, Value arg, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.algo = AlgoKind::kCentralized;
    s.rho = std::move(rho);
    return batch.add(queue, std::move(s));
  };

  const auto h_enq = ours("enqueue", Value{1}, 0.0);
  const auto h_enq_c = central("enqueue", Value{1});
  const auto h_deq = ours("dequeue", Value::nil(), 0.0, seeded);
  const auto h_deq_c = central("dequeue", Value::nil(), seeded);
  const auto h_peek = ours("peek", Value::nil(), d - eps, seeded);
  const auto h_peek_c = central("peek", Value::nil(), seeded);
  const auto h_peek_x0 = ours("peek", Value::nil(), 0.0, seeded);
  batch.run();
  auto L = [&](std::size_t h) { return batch.latency(h); };

  std::vector<bench::TableRow> rows;
  rows.push_back({"Enqueue", "u/2 [3]", "(1-1/n)u = " + fmt((1.0 - 1.0 / params.n) * u) +
                  " (Thm 3)", "eps = " + fmt(eps) + " (X=0)", L(h_enq),
                  L(h_enq_c), ""});
  rows.push_back({"Dequeue", "d [3]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 4)",
                  "d+eps = " + fmt(d + eps), L(h_deq), L(h_deq_c), ""});
  rows.push_back({"Peek", "-", "u/4 = " + fmt(u / 4) + " (Thm 2)",
                  "eps = " + fmt(eps) + " (X=d-eps)",
                  L(h_peek), L(h_peek_c), "first lower bound for Peek"});
  rows.push_back({"Enqueue + Peek", "d [13]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 5)",
                  "d+eps = " + fmt(d + eps),
                  L(h_enq) + L(h_peek_x0),
                  L(h_enq_c) + L(h_peek_c),
                  "sum is X-invariant"});

  bench::print_table("Table 2: Operation Bounds for Queues", params, rows);

  {
    shift::Theorem3Spec spec;
    spec.op = "enqueue";
    spec.args = {Value{1}, Value{2}, Value{3}, Value{4}, Value{5}};
    spec.probe = std::vector<ScriptOp>(5, ScriptOp{"dequeue", Value::nil()});
    bench::print_experiment(shift::theorem3_last_sensitive(queue, spec, params));
  }
  {
    shift::Theorem4Spec spec;
    spec.op = "dequeue";
    spec.arg0 = Value::nil();
    spec.arg1 = Value::nil();
    spec.rho = {ScriptOp{"enqueue", Value{7}}};
    bench::print_experiment(shift::theorem4_pair_free(queue, spec, params));
  }
  {
    shift::Theorem2Spec spec;
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    spec.mutator_op = "dequeue";
    spec.mutator_arg = Value::nil();
    spec.rho = {ScriptOp{"enqueue", Value{1}}};
    bench::print_experiment(shift::theorem2_pure_accessor(queue, spec, params));
  }
  {
    shift::Theorem5Spec spec;
    spec.op = "enqueue";
    spec.arg0 = Value{1};
    spec.arg1 = Value{2};
    spec.aop = "peek";
    spec.aop_arg = Value::nil();
    bench::print_experiment(shift::theorem5_sum(queue, spec, params));
  }
  return 0;
}
