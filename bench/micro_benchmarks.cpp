// Google-benchmark microbenchmarks: raw throughput of the simulator kernel,
// Algorithm 1 end-to-end, the linearizability checker (with the
// memoization ablation visible through history size scaling), the empirical
// classifier, and the shifting machinery.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>

#include "adt/classify.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "clocksync/lundelius_lynch.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "shift/shift.hpp"

namespace {

using lintime::adt::Value;
namespace harness = lintime::harness;
namespace sim = lintime::sim;

sim::ModelParams params_for(int n) {
  sim::ModelParams p{n, 10.0, 2.0, 0.0};
  p.eps = p.optimal_eps();
  return p;
}

/// End-to-end Algorithm 1 run: n processes, ops_per_proc closed-loop ops.
void BM_AlgorithmOneThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lintime::adt::QueueType queue;
  std::int64_t total_ops = 0;
  for (auto _ : state) {
    harness::RunSpec spec;
    spec.params = params_for(n);
    spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 7);
    spec.scripts = harness::random_scripts(queue, n, 20, 99);
    const auto result = harness::execute(queue, spec);
    benchmark::DoNotOptimize(result.record.ops.size());
    total_ops += static_cast<std::int64_t>(result.record.ops.size());
  }
  state.SetItemsProcessed(total_ops);
}
BENCHMARK(BM_AlgorithmOneThroughput)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Simulator event throughput: message ping storm without algorithm logic.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  lintime::adt::RegisterType reg;
  std::int64_t steps = 0;
  for (auto _ : state) {
    harness::RunSpec spec;
    spec.params = params_for(8);
    spec.scripts = harness::random_scripts(reg, 8, 25, 3);
    const auto result = harness::execute(reg, spec);
    benchmark::DoNotOptimize(result.record.steps.size());
    steps += static_cast<std::int64_t>(result.record.steps.size());
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_SimulatorEventThroughput);

/// Checker cost as history size grows (memoized Wing-Gong).
void BM_CheckerScaling(benchmark::State& state) {
  const int ops_per_proc = static_cast<int>(state.range(0));
  lintime::adt::QueueType queue;
  harness::RunSpec spec;
  spec.params = params_for(4);
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 5);
  spec.scripts = harness::random_scripts(queue, 4, ops_per_proc, 11);
  const auto result = harness::execute(queue, spec);
  for (auto _ : state) {
    const auto check = lintime::lin::check_linearizability(queue, result.record);
    benchmark::DoNotOptimize(check.linearizable);
  }
  state.SetLabel(std::to_string(result.record.ops.size()) + " ops");
}
BENCHMARK(BM_CheckerScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Empirical classifier over a full data type.
void BM_ClassifierQueue(benchmark::State& state) {
  lintime::adt::QueueType queue;
  for (auto _ : state) {
    const auto result = lintime::adt::classify_all(queue);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_ClassifierQueue);

/// shift() on a recorded run.
void BM_ShiftRun(benchmark::State& state) {
  lintime::adt::QueueType queue;
  harness::RunSpec spec;
  spec.params = params_for(4);
  spec.scripts = harness::random_scripts(queue, 4, 10, 23);
  const auto record = harness::execute(queue, spec).record;
  const std::vector<double> x = {0.1, -0.1, 0.05, 0.0};
  for (auto _ : state) {
    const auto shifted = lintime::shift::shift_run(record, x);
    benchmark::DoNotOptimize(shifted.steps.size());
  }
}
BENCHMARK(BM_ShiftRun);

/// Clock synchronization round.
void BM_ClockSync(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto p = params_for(n);
  const std::vector<double> hw(static_cast<std::size_t>(n), 0.0);
  for (auto _ : state) {
    const auto outcome = lintime::clocksync::synchronize(
        p, hw, std::make_shared<sim::ConstantDelay>(9.0));
    benchmark::DoNotOptimize(outcome.achieved_skew);
  }
}
BENCHMARK(BM_ClockSync)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

// Appended microbenchmarks: the Construction 1 validator, the
// non-deterministic checker, and the composite (multi-object) runtime.

#include "adt/counter_type.hpp"
#include "adt/pool_type.hpp"
#include "adt/register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "adt/pqueue_type.hpp"
#include "core/composite.hpp"
#include "core/construction.hpp"
#include "core/sharded_store.hpp"
#include "lin/check.hpp"
#include "lin/fast/history_gen.hpp"
#include "lin/nondet_checker.hpp"
#include "sim/world.hpp"

namespace {

void BM_ConstructionValidator(benchmark::State& state) {
  lintime::adt::QueueType queue;
  const auto params = params_for(4);
  std::vector<const lintime::core::AlgorithmOneProcess*> replicas;
  lintime::sim::WorldConfig config;
  config.params = params;
  config.type = &queue;
  config.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 3);
  lintime::sim::World world(config, [&](sim::ProcId) {
    auto p = std::make_unique<lintime::core::AlgorithmOneProcess>(
        queue, lintime::core::TimingPolicy::standard(params, 0.0));
    replicas.push_back(p.get());
    return p;
  });
  // Intern once, dispatch by id: scheduling loops stay off the deprecated
  // per-call string lookup.
  const auto enq = queue.op_id("enqueue");
  const auto deq = queue.op_id("dequeue");
  for (int i = 0; i < 4; ++i) {
    for (int p = 0; p < 4; ++p) {
      world.invoke_at(i * 20.0 + p * 0.25, p, i % 2 == 0 ? enq : deq, lintime::adt::Value{i});
    }
  }
  world.run();
  const auto record = world.record();
  for (auto _ : state) {
    const auto c = lintime::core::build_construction(queue, replicas, record);
    benchmark::DoNotOptimize(c.valid());
  }
}
BENCHMARK(BM_ConstructionValidator);

void BM_NondetChecker(benchmark::State& state) {
  lintime::adt::PoolType det;
  lintime::adt::PoolNondetSpec spec;
  harness::RunSpec run;
  run.params = params_for(4);
  run.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 5);
  run.scripts = harness::random_scripts(det, 4, 6, 13);
  const auto record = harness::execute(det, run).record;
  for (auto _ : state) {
    const auto c = lintime::lin::check_linearizability_nondet(spec, record);
    benchmark::DoNotOptimize(c.linearizable);
  }
}
BENCHMARK(BM_NondetChecker);

/// Checker throughput per data type: ops/sec and nodes/sec over a fixed
/// Algorithm-1-generated history.  Run by the CI smoke job as
///   micro_benchmarks --benchmark_filter='BM_CheckerThroughput'
///                    --benchmark_out=BENCH_checker.json
///                    --benchmark_out_format=json
/// so before/after numbers for the memoized search land in BENCH_checker.json.
template <class TypeT>
void checker_throughput(benchmark::State& state, int ops_per_proc, unsigned script_seed) {
  const TypeT type;
  harness::RunSpec spec;
  spec.params = params_for(4);
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 5);
  spec.scripts = harness::random_scripts(type, 4, ops_per_proc, script_seed);
  const auto record = harness::execute(type, spec).record;
  std::int64_t ops = 0;
  std::int64_t nodes = 0;
  for (auto _ : state) {
    const auto check = lintime::lin::check_linearizability(type, record);
    benchmark::DoNotOptimize(check.linearizable);
    ops += static_cast<std::int64_t>(record.ops.size());
    nodes += static_cast<std::int64_t>(check.nodes_expanded);
  }
  state.counters["ops_per_sec"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["nodes_per_sec"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.SetLabel(type.name() + ", " + std::to_string(record.ops.size()) + " ops");
}

void BM_CheckerThroughput_Queue(benchmark::State& state) {
  checker_throughput<lintime::adt::QueueType>(state, 10, 11);
}
BENCHMARK(BM_CheckerThroughput_Queue);

void BM_CheckerThroughput_Stack(benchmark::State& state) {
  checker_throughput<lintime::adt::StackType>(state, 10, 17);
}
BENCHMARK(BM_CheckerThroughput_Stack);

void BM_CheckerThroughput_Register(benchmark::State& state) {
  checker_throughput<lintime::adt::RegisterType>(state, 12, 19);
}
BENCHMARK(BM_CheckerThroughput_Register);

void BM_CheckerThroughput_Set(benchmark::State& state) {
  checker_throughput<lintime::adt::SetType>(state, 10, 23);
}
BENCHMARK(BM_CheckerThroughput_Set);

void BM_CheckerThroughput_Counter(benchmark::State& state) {
  checker_throughput<lintime::adt::CounterType>(state, 12, 29);
}
BENCHMARK(BM_CheckerThroughput_Counter);

void BM_CheckerThroughput_Tree(benchmark::State& state) {
  checker_throughput<lintime::adt::TreeType>(state, 8, 31);
}
BENCHMARK(BM_CheckerThroughput_Tree);

/// Fast-path checker throughput: generated unambiguous histories routed
/// through lin::check() to the log-linear monitors.  The sizes run 10^4 to
/// 10^6 operations -- two to five orders of magnitude beyond what the
/// general search handles above -- and land in BENCH_checker.json next to
/// the Wing-Gong numbers.
template <class TypeT>
void fast_checker_throughput(benchmark::State& state) {
  const TypeT type;
  lintime::lin::fast::GenOptions gen;
  gen.procs = 8;
  gen.total_ops = static_cast<std::size_t>(state.range(0));
  gen.seed = 42;
  const auto ops = lintime::lin::fast::generate_unambiguous(type, gen);
  std::int64_t checked = 0;
  for (auto _ : state) {
    const auto report = lintime::lin::check(type, ops);
    benchmark::DoNotOptimize(report.result.linearizable);
    checked += static_cast<std::int64_t>(ops.size());
  }
  state.counters["ops_per_sec"] =
      benchmark::Counter(static_cast<double>(checked), benchmark::Counter::kIsRate);
  state.SetLabel(type.name() + ", " + std::to_string(ops.size()) + " ops, fast path");
}

void BM_FastCheckerThroughput_Queue(benchmark::State& state) {
  fast_checker_throughput<lintime::adt::QueueType>(state);
}
BENCHMARK(BM_FastCheckerThroughput_Queue)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FastCheckerThroughput_Stack(benchmark::State& state) {
  fast_checker_throughput<lintime::adt::StackType>(state);
}
BENCHMARK(BM_FastCheckerThroughput_Stack)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FastCheckerThroughput_Register(benchmark::State& state) {
  fast_checker_throughput<lintime::adt::RegisterType>(state);
}
BENCHMARK(BM_FastCheckerThroughput_Register)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FastCheckerThroughput_Set(benchmark::State& state) {
  fast_checker_throughput<lintime::adt::SetType>(state);
}
BENCHMARK(BM_FastCheckerThroughput_Set)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FastCheckerThroughput_PQueue(benchmark::State& state) {
  fast_checker_throughput<lintime::adt::PriorityQueueType>(state);
}
BENCHMARK(BM_FastCheckerThroughput_PQueue)->Arg(10000)->Arg(100000)->Arg(1000000);

/// End-to-end serving throughput at keyspace scale: a ShardedStore of
/// registers with as many keys as operations, served by per-shard
/// Algorithm 1 instances over n = 8 processes with an OPEN-LOOP pre-scheduled
/// arrival plan (the whole plan sits in the event queue, so the scheduler
/// carries 10^5-10^6 pending events), ops-only recording.  The _Ring/_Heap
/// pair compares the new serving stack (event ring, ops-only recording)
/// against the pre-refactor World configuration (binary heap, full
/// step/message recording -- the only mode the old World had); the ISSUE's
/// >= 3x acceptance bar compares these two at 10^6 ops.  Byte-identity of
/// the two schedulers under EQUAL settings is asserted separately by the
/// 60-seed equivalence suite.  Run by the CI smoke job next to
/// BM_CheckerThroughput.
void serving_throughput(benchmark::State& state, sim::SchedulerKind sched,
                        sim::RecordDetail detail, bool intern_calls) {
  const auto total_ops = static_cast<std::int64_t>(state.range(0));
  const int n = 8;
  lintime::adt::RegisterType reg;
  lintime::core::ShardedStore store(reg, total_ops, 16);
  harness::RunSpec spec;
  spec.params = params_for(n);
  spec.algo = harness::AlgoKind::kShardedServing;
  spec.scheduler = sched;
  spec.record_detail = detail;
  spec.intern_calls = intern_calls;
  spec.max_events = 60'000'000;
  spec.calls = harness::sharded_calls(store, n, static_cast<int>(total_ops / n), 42);
  std::int64_t completed = 0;
  for (auto _ : state) {
    const auto result = harness::execute(store, spec);
    benchmark::DoNotOptimize(result.record.ops.size());
    completed += static_cast<std::int64_t>(result.record.ops.size());
  }
  state.counters["ops_per_sec"] =
      benchmark::Counter(static_cast<double>(completed), benchmark::Counter::kIsRate);
  state.SetLabel(store.name());
}

void BM_ServingThroughput_Ring(benchmark::State& state) {
  serving_throughput(state, sim::SchedulerKind::kEventRing, sim::RecordDetail::kOpsOnly,
                     /*intern_calls=*/true);
}
BENCHMARK(BM_ServingThroughput_Ring)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_ServingThroughput_Heap(benchmark::State& state) {
  // String-overload dispatch: the pre-refactor World had no invoke_at(OpId).
  serving_throughput(state, sim::SchedulerKind::kBinaryHeap, sim::RecordDetail::kFull,
                     /*intern_calls=*/false);
}
BENCHMARK(BM_ServingThroughput_Heap)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_CompositeTwoObjects(benchmark::State& state) {
  lintime::adt::QueueType queue;
  lintime::adt::RegisterType reg;
  lintime::core::ProductType product({&queue, &reg});
  const auto params = params_for(4);
  // The product type outlives every per-iteration world, so its interned
  // ids are resolved once out here.
  const auto enq = product.op_id("0:enqueue");
  const auto write = product.op_id("1:write");
  const auto peek = product.op_id("0:peek");
  const auto read = product.op_id("1:read");
  std::int64_t ops = 0;
  for (auto _ : state) {
    lintime::sim::WorldConfig config;
    config.params = params;
    config.type = &product;
    config.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 9);
    lintime::sim::World world(config, [&](sim::ProcId) {
      return std::make_unique<lintime::core::CompositeProcess>(
          product, lintime::core::TimingPolicy::standard(params, 0.0));
    });
    for (int i = 0; i < 5; ++i) {
      world.invoke_at(i * 20.0, 0, enq, lintime::adt::Value{i});
      world.invoke_at(i * 20.0, 1, write, lintime::adt::Value{i});
      world.invoke_at(i * 20.0, 2, peek, lintime::adt::Value::nil());
      world.invoke_at(i * 20.0, 3, read, lintime::adt::Value::nil());
    }
    world.run();
    ops += static_cast<std::int64_t>(world.record().ops.size());
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_CompositeTwoObjects);

}  // namespace

// Custom main (instead of benchmark_main) so the JSON context carries the
// build/compiler stamp next to google-benchmark's own num_cpus: a committed
// BENCH_checker.json should say what produced it.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#ifdef LINTIME_BUILD_TYPE
  benchmark::AddCustomContext("build_type", LINTIME_BUILD_TYPE);
#endif
#if defined(__clang__)
  benchmark::AddCustomContext("compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
  benchmark::AddCustomContext("compiler", "gcc " __VERSION__);
#endif
  benchmark::AddCustomContext(
      "hardware_threads", std::to_string(std::thread::hardware_concurrency()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
