# One binary per reproduced table / figure, plus google-benchmark
# microbenchmarks.  Each binary is standalone:
#   for b in build/bench/*; do $b; done
foreach(bench
    table1_registers table2_queues table3_stacks table4_trees table5_summary
    fig11_classification fig_theorem2_accessor fig_theorem3_shift
    fig_theorem4_chop fig_theorem5_sum tradeoff_sweep sc_gap ablations
    latency_distribution robustness campaign_runner)
  add_executable(${bench} bench/${bench}.cpp bench/bench_util.cpp)
  set_target_properties(${bench} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${bench} PRIVATE
    lintime_adt lintime_sim lintime_core lintime_baseline lintime_lin
    lintime_shift lintime_clocksync lintime_harness lintime_campaign
    lintime_scenario)
endforeach()

# The runner resolves --campaign NAME against the checked-in corpus.
target_compile_definitions(campaign_runner PRIVATE
  LINTIME_SCENARIO_DIR="${CMAKE_SOURCE_DIR}/scenarios")

add_executable(micro_benchmarks bench/micro_benchmarks.cpp)
set_target_properties(micro_benchmarks PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
# The build-type stamp lands in the benchmark JSON context (custom main).
target_compile_definitions(micro_benchmarks PRIVATE LINTIME_BUILD_TYPE="${CMAKE_BUILD_TYPE}")
target_link_libraries(micro_benchmarks PRIVATE
  lintime_adt lintime_sim lintime_core lintime_baseline lintime_lin
  lintime_shift lintime_clocksync lintime_harness
  benchmark::benchmark)
