// campaign_runner: the CLI for the campaign subsystem.  Expands one of the
// built-in experiment grids into jobs, runs them on a worker pool, and
// writes machine-readable artifacts (JSON / CSV) plus an optional
// wall-clock bench entry.  The deterministic sinks are byte-identical for
// any --jobs value; only the bench entry (wall time) varies.
//
// Usage:
//   campaign_runner [--campaign NAME] [--jobs N] [--json PATH] [--csv PATH]
//                   [--bench-out PATH] [--quiet] [--list]
//
// Campaigns:
//   tradeoff    X-grid x n x seeds over random queue workloads (81 jobs,
//               linearizability-checked) -- the parallel form of the
//               tradeoff_sweep / Section 5.1.2 experiment.
//   robustness  drift/drop grids x seeds (the assumption-sensitivity sweep).
//   latency     u x algorithm x seeds latency distributions.
//   serving     sharded multi-object throughput: ops-scale x scheduler
//               (event ring vs. legacy binary heap), ops/sec in the bench
//               entry.  --serving-ops N restricts the grid to one scale.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "campaign/executor.hpp"
#include "campaign/grid.hpp"
#include "campaign/sink.hpp"
#include "core/sharded_store.hpp"
#include "harness/runner.hpp"
#include "sim/delay_model.hpp"

namespace {

using namespace lintime;

// The X-grid of tradeoff_sweep (9 steps over [0, d-eps]) crossed with n and
// workload seeds: 9 x 3 x 3 = 81 jobs, each a random closed-loop queue
// workload under uniformly random delays, checked for linearizability.
campaign::CampaignSpec build_tradeoff(const adt::DataType& type) {
  campaign::CampaignSpec spec;
  spec.name = "tradeoff";
  const int kSteps = 8;
  std::vector<double> xfrac;
  for (int i = 0; i <= kSteps; ++i) xfrac.push_back(static_cast<double>(i) / kSteps);

  const auto points = campaign::Grid{}
                          .axis("n", std::vector<int>{3, 5, 8})
                          .axis("xfrac", xfrac)
                          .range("seed", 1, 3)
                          .points();
  for (const auto& p : points) {
    sim::ModelParams params{static_cast<int>(p.integer("n")), 10.0, 2.0, 0.0};
    params.eps = params.optimal_eps();
    const auto seed = static_cast<std::uint64_t>(p.integer("seed"));

    campaign::Job job;
    job.name = p.label();
    job.tags = p.coords();
    job.type = &type;
    job.spec.params = params;
    job.spec.algo = harness::AlgoKind::kAlgorithmOne;
    job.spec.X = (params.d - params.eps) * p.num("xfrac");
    job.spec.delays =
        std::make_shared<sim::UniformRandomDelay>(params.min_delay(), params.d, seed);
    job.spec.scripts = harness::random_scripts(type, params.n, 4, seed * 31);
    job.check_linearizability = true;
    spec.jobs.push_back(std::move(job));
  }
  return spec;
}

// The assumption-sensitivity sweep of bench/robustness.cpp as a campaign:
// drift levels and drop probabilities crossed with seeds.
campaign::CampaignSpec build_robustness(const adt::DataType& type) {
  campaign::CampaignSpec spec;
  spec.name = "robustness";
  sim::ModelParams params{4, 10.0, 2.0, 1.5};

  auto add = [&](const std::string& mode, double level, int seed) {
    campaign::Job job;
    job.name = mode + "=" + campaign::fmt_double(level) + "/seed=" + std::to_string(seed);
    job.tags = {{"mode", mode}, {"level", campaign::fmt_double(level)},
                {"seed", std::to_string(seed)}};
    job.type = &type;
    job.spec.params = params;
    job.spec.algo = harness::AlgoKind::kAlgorithmOne;
    job.spec.X = 0.0;
    job.spec.delays = std::make_shared<sim::UniformRandomDelay>(
        params.min_delay(), params.d, static_cast<std::uint64_t>(seed));
    if (mode == "drift") {
      job.spec.clock_rates = {1.0 + level, 1.0 - level, 1.0 + level, 1.0 - level};
    } else {
      job.spec.drop_probability = level;
      job.spec.drop_seed = static_cast<std::uint64_t>(seed) * 13;
    }
    const auto scripts =
        harness::random_scripts(type, params.n, 8, static_cast<std::uint64_t>(seed) * 7);
    double t = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      for (int p = 0; p < params.n; ++p) {
        job.spec.calls.push_back(harness::Call{t + p * 0.25, p,
                                               scripts[static_cast<std::size_t>(p)][i].op,
                                               scripts[static_cast<std::size_t>(p)][i].arg});
      }
      t += 40.0;
    }
    job.check_linearizability = true;
    spec.jobs.push_back(std::move(job));
  };

  for (const double rho : {0.0, 1e-4, 1e-3, 1e-2, 3e-2, 1e-1}) {
    for (int seed = 1; seed <= 6; ++seed) add("drift", rho, seed);
  }
  for (const double p : {0.0, 0.001, 0.01, 0.05, 0.1, 0.3}) {
    for (int seed = 1; seed <= 6; ++seed) add("drop", p, seed);
  }
  return spec;
}

// Latency distributions (bench/latency_distribution.cpp) as a campaign:
// u x algorithm x seeds.
campaign::CampaignSpec build_latency(const adt::DataType& type) {
  campaign::CampaignSpec spec;
  spec.name = "latency";
  const auto points = campaign::Grid{}
                          .axis("u", std::vector<double>{0.5, 2.0, 4.0})
                          .axis("algo", {std::string("algorithm1"), std::string("centralized")})
                          .range("seed", 1, 20)
                          .points();
  for (const auto& p : points) {
    sim::ModelParams params{5, 10.0, p.num("u"), 0.0};
    params.eps = params.optimal_eps();
    const auto seed = static_cast<std::uint64_t>(p.integer("seed"));

    campaign::Job job;
    job.name = p.label();
    job.tags = p.coords();
    job.type = &type;
    job.spec.params = params;
    job.spec.algo = p.get("algo") == "centralized" ? harness::AlgoKind::kCentralized
                                                   : harness::AlgoKind::kAlgorithmOne;
    job.spec.X = job.spec.algo == harness::AlgoKind::kAlgorithmOne
                     ? (params.d - params.eps) / 2
                     : 0.0;
    job.spec.delays =
        std::make_shared<sim::UniformRandomDelay>(params.min_delay(), params.d, seed);
    job.spec.scripts = harness::random_scripts(type, params.n, 6, seed * 31);
    spec.jobs.push_back(std::move(job));
  }
  return spec;
}

// The serving-layer throughput sweep: a ShardedStore of registers with as
// many keys as operations, driven by an open-loop pre-scheduled arrival
// plan at n = 8 processes, crossed with the scheduler (event ring vs. the
// legacy binary heap it replaced).  Jobs run with kOpsOnly recording and no
// linearizability check -- the point is end-to-end simulator throughput,
// reported as ops/sec in the bench entry; correctness at this scale is
// covered by the sharded-store and event-ring test suites.
struct ServingCampaign {
  // Heap-allocated so addresses stay stable when the struct is moved out of
  // build_serving (stores reference the component; jobs reference stores).
  std::unique_ptr<adt::RegisterType> component;
  std::vector<std::unique_ptr<core::ShardedStore>> stores;  ///< one per scale
  campaign::CampaignSpec spec;
};

ServingCampaign build_serving(std::int64_t ops_override) {
  ServingCampaign out;
  out.component = std::make_unique<adt::RegisterType>();
  out.spec.name = "serving";

  std::vector<std::int64_t> scales{100'000, 1'000'000};
  if (ops_override > 0) scales = {ops_override};

  const int n = 8;
  const int kShards = 16;
  for (const std::int64_t ops : scales) {
    // One store per scale: the keyspace is as large as the workload, so a
    // 10^6-op job addresses 10^6 distinct keys.
    out.stores.push_back(std::make_unique<core::ShardedStore>(*out.component, ops, kShards));
    const core::ShardedStore& store = *out.stores.back();
    const auto calls = harness::sharded_calls(store, n, static_cast<int>(ops / n), 42);

    for (const auto sched : {sim::SchedulerKind::kEventRing, sim::SchedulerKind::kBinaryHeap}) {
      const bool ring = sched == sim::SchedulerKind::kEventRing;
      campaign::Job job;
      job.name = "ops=" + std::to_string(ops) + "/sched=" + (ring ? "ring" : "heap");
      job.tags = {{"ops", std::to_string(ops)}, {"sched", ring ? "ring" : "heap"}};
      job.type = &store;
      job.spec.params = sim::ModelParams{n, 10.0, 2.0, 0.0};
      job.spec.params.eps = job.spec.params.optimal_eps();
      job.spec.algo = harness::AlgoKind::kShardedServing;
      job.spec.X = 0.0;
      job.spec.scheduler = sched;
      job.spec.record_detail = sim::RecordDetail::kOpsOnly;
      job.spec.max_events = 60'000'000;
      job.spec.calls = calls;
      job.check_linearizability = false;
      out.spec.jobs.push_back(std::move(job));
    }
  }
  return out;
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--campaign tradeoff|robustness|latency|serving] [--jobs N]\n"
      "          [--serving-ops N] [--json PATH] [--csv PATH] [--bench-out PATH]\n"
      "          [--quiet] [--list]\n",
      argv0);
  return 2;
}

}  // namespace

// detlint:capability(wall-clock): the harness main times the campaign itself,
// reported on stderr and in the --bench entry; the result JSON/CSV stays
// seed-pure.
int main(int argc, char** argv) {
  std::string campaign_name = "tradeoff";
  std::string json_path;
  std::string csv_path;
  std::string bench_path;
  int jobs = 0;
  std::int64_t serving_ops = 0;  ///< 0 = full {1e5, 1e6} serving grid
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaign") campaign_name = next();
    else if (arg == "--jobs") jobs = std::atoi(next());
    else if (arg == "--serving-ops") serving_ops = std::atoll(next());
    else if (arg == "--json") json_path = next();
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--bench-out") bench_path = next();
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--list") {
      std::printf("tradeoff\nrobustness\nlatency\nserving\n");
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  adt::QueueType queue;
  std::optional<ServingCampaign> serving;  // owns the sharded stores the jobs point at
  campaign::CampaignSpec spec;
  if (campaign_name == "tradeoff") spec = build_tradeoff(queue);
  else if (campaign_name == "robustness") spec = build_robustness(queue);
  else if (campaign_name == "latency") spec = build_latency(queue);
  else if (campaign_name == "serving") {
    serving.emplace(build_serving(serving_ops));
    spec = std::move(serving->spec);
  } else {
    std::fprintf(stderr, "unknown campaign '%s'\n", campaign_name.c_str());
    return usage(argv[0]);
  }

  campaign::ExecutorOptions options;
  options.jobs = jobs;
  if (!quiet) {
    options.on_progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu]", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }

  const int workers = campaign::resolve_jobs(jobs, spec.jobs.size());
  if (!quiet) {
    std::fprintf(stderr, "campaign '%s': %zu jobs on %d worker(s)\n", spec.name.c_str(),
                 spec.jobs.size(), workers);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = campaign::run_campaign(spec, options);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  const auto agg = result.aggregate();
  if (!quiet) {
    std::fprintf(stderr,
                 "done in %.3fs: %zu jobs, %zu failed, %zu/%zu checked linearizable\n", wall,
                 agg.jobs_total, agg.jobs_failed, agg.jobs_linearizable, agg.jobs_checked);
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    campaign::write_json(os, result);
  }
  if (!csv_path.empty()) {
    std::ofstream os(csv_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    campaign::write_csv(os, result);
  }
  if (!bench_path.empty()) {
    std::ofstream os(bench_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", bench_path.c_str());
      return 1;
    }
    // First line: the host/build stamp, so the wall-clock entries below are
    // interpretable after the artifact leaves the machine that recorded it.
    os << "{\"context\":";
    campaign::write_bench_context(os, campaign::current_bench_context());
    os << "}\n";
    campaign::BenchEntry entry{spec.name, spec.jobs.size(), workers, wall};
    if (campaign_name == "serving") entry.total_ops = agg.ops_complete;
    campaign::write_bench_entry(os, entry);
    os << "\n";
  }
  if (json_path.empty() && csv_path.empty()) {
    campaign::write_json(std::cout, result);
  }
  return agg.jobs_failed == 0 ? 0 : 1;
}
