// campaign_runner: the CLI for the campaign subsystem.  Campaigns are no
// longer hard-coded grids: every experiment is a scenario file (strict
// mini-TOML, src/scenario) expanded into jobs, run on a worker pool, and
// written as machine-readable artifacts (JSON / CSV) plus an optional
// wall-clock bench entry.  The deterministic sinks are byte-identical for
// any --jobs value; only the bench entry (wall time) varies.
//
// Usage:
//   campaign_runner [--campaign NAME | --scenario FILE] [--scenario-dir DIR]
//                   [--axis NAME=V1,V2,...] [--serving-ops N] [--jobs N]
//                   [--json PATH] [--csv PATH] [--bench-out PATH]
//                   [--quiet] [--list] [--digests] [--check-corpus]
//
//   --campaign NAME     load DIR/NAME.toml (default: tradeoff)
//   --scenario FILE     load an explicit scenario file instead
//   --axis NAME=...     override one axis's values everywhere it is declared
//   --serving-ops N     sugar for --axis ops=N (the serving scales)
//   --list              print the scenario names in DIR, sorted
//   --digests           print "NAME DIGEST JOBS" for every scenario in DIR
//   --check-corpus      like --digests, but verify against DIR/digests.txt
//
// The default DIR is the checked-in scenarios/ corpus (compiled in as
// LINTIME_SCENARIO_DIR); the corpus digests pin expansion semantics.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/sink.hpp"
#include "scenario/expand.hpp"
#include "scenario/scenario.hpp"

#ifndef LINTIME_SCENARIO_DIR
#define LINTIME_SCENARIO_DIR "scenarios"
#endif

namespace {

using namespace lintime;

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--campaign NAME | --scenario FILE] [--scenario-dir DIR]\n"
      "          [--axis NAME=V1,V2,...] [--serving-ops N] [--jobs N]\n"
      "          [--json PATH] [--csv PATH] [--bench-out PATH]\n"
      "          [--quiet] [--list] [--digests] [--check-corpus]\n",
      argv0);
  return 2;
}

/// Scenario basenames in `dir`, sorted -- the corpus in a stable order.
std::vector<std::string> corpus_names(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".toml") names.push_back(entry.path().stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// "NAME DIGEST JOBS" lines for every scenario in `dir`.
std::string corpus_digests(const std::string& dir) {
  std::string out;
  for (const std::string& name : corpus_names(dir)) {
    const auto sc = scenario::load_scenario_file(dir + "/" + name + ".toml");
    const auto campaign = scenario::expand(sc);
    out += name + " " + scenario::campaign_digest(campaign) + " " +
           std::to_string(campaign.spec.jobs.size()) + "\n";
  }
  return out;
}

scenario::AxisOverride parse_axis(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  scenario::AxisOverride ov;
  if (eq != std::string::npos && eq != 0) {
    ov.axis = arg.substr(0, eq);
    std::string item;
    std::istringstream in(arg.substr(eq + 1));
    while (std::getline(in, item, ',')) {
      if (!item.empty()) ov.values.push_back(item);
    }
  }
  if (ov.axis.empty() || ov.values.empty()) {
    std::fprintf(stderr, "--axis expects NAME=V1,V2,... got '%s'\n", arg.c_str());
    std::exit(2);
  }
  return ov;
}

}  // namespace

// detlint:capability(wall-clock): the harness main times the campaign itself,
// reported on stderr and in the --bench entry; the result JSON/CSV stays
// seed-pure.
int main(int argc, char** argv) {
  std::string campaign_name = "tradeoff";
  std::string scenario_path;
  std::string scenario_dir = LINTIME_SCENARIO_DIR;
  std::string json_path;
  std::string csv_path;
  std::string bench_path;
  std::vector<scenario::AxisOverride> overrides;
  int jobs = 0;
  bool quiet = false;
  bool list = false;
  bool digests = false;
  bool check_corpus = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaign") campaign_name = next();
    else if (arg == "--scenario") scenario_path = next();
    else if (arg == "--scenario-dir") scenario_dir = next();
    else if (arg == "--axis") overrides.push_back(parse_axis(next()));
    else if (arg == "--serving-ops") overrides.push_back({"ops", {next()}});
    else if (arg == "--jobs") jobs = std::atoi(next());
    else if (arg == "--json") json_path = next();
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--bench-out") bench_path = next();
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--list") list = true;
    else if (arg == "--digests") digests = true;
    else if (arg == "--check-corpus") check_corpus = true;
    else {
      return usage(argv[0]);
    }
  }

  try {
    if (list) {
      for (const std::string& name : corpus_names(scenario_dir)) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (digests || check_corpus) {
      const std::string computed = corpus_digests(scenario_dir);
      std::fputs(computed.c_str(), stdout);
      if (!check_corpus) return 0;
      std::ifstream in(scenario_dir + "/digests.txt", std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s/digests.txt\n", scenario_dir.c_str());
        return 1;
      }
      std::ostringstream pinned;
      pinned << in.rdbuf();
      if (pinned.str() != computed) {
        std::fprintf(stderr,
                     "corpus digest mismatch against %s/digests.txt -- expansion semantics "
                     "changed; regenerate with --digests if intentional\n",
                     scenario_dir.c_str());
        return 1;
      }
      if (!quiet) std::fprintf(stderr, "corpus digests OK\n");
      return 0;
    }

    if (scenario_path.empty()) {
      scenario_path = scenario_dir + "/" + campaign_name + ".toml";
    }
    const auto sc = scenario::load_scenario_file(scenario_path);
    const auto campaign = scenario::expand(sc, overrides);
    const campaign::CampaignSpec& spec = campaign.spec;

    campaign::ExecutorOptions options;
    options.jobs = jobs;
    if (!quiet) {
      options.on_progress = [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r[%zu/%zu]", done, total);
        if (done == total) std::fprintf(stderr, "\n");
      };
    }

    const int workers = campaign::resolve_jobs(jobs, spec.jobs.size());
    if (!quiet) {
      std::fprintf(stderr, "campaign '%s': %zu jobs on %d worker(s)\n", spec.name.c_str(),
                   spec.jobs.size(), workers);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = campaign::run_campaign(spec, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();

    const auto agg = result.aggregate();
    if (!quiet) {
      std::fprintf(stderr,
                   "done in %.3fs: %zu jobs, %zu failed, %zu/%zu checked linearizable\n", wall,
                   agg.jobs_total, agg.jobs_failed, agg.jobs_linearizable, agg.jobs_checked);
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
      }
      campaign::write_json(os, result);
    }
    if (!csv_path.empty()) {
      std::ofstream os(csv_path, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
        return 1;
      }
      campaign::write_csv(os, result);
    }
    if (!bench_path.empty()) {
      std::ofstream os(bench_path, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", bench_path.c_str());
        return 1;
      }
      // First line: the host/build stamp, so the wall-clock entries below are
      // interpretable after the artifact leaves the machine that recorded it.
      os << "{\"context\":";
      campaign::write_bench_context(os, campaign::current_bench_context());
      os << "}\n";
      campaign::BenchEntry entry{spec.name, spec.jobs.size(), workers, wall};
      if (campaign.bench_ops) entry.total_ops = agg.ops_complete;
      campaign::write_bench_entry(os, entry);
      os << "\n";
    }
    if (json_path.empty() && csv_path.empty()) {
      campaign::write_json(std::cout, result);
    }
    return agg.jobs_failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }
}
