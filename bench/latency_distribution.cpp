// Latency distributions under random (rather than worst-case) delays -- a
// systems-level companion to the tables: Algorithm 1's response times are
// timer-driven and therefore CONSTANT per class regardless of realized
// delays, while the centralized baseline's latency tracks the delay
// distribution.  Swept over delay spreads (u) and seeds.
//
// The sweep is a campaign: the u x algorithm x seed grid expands to one job
// per (u, algo, seed), all executed by the campaign worker pool; per-op
// distributions are then pooled from the per-job latency samples.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adt/queue_type.hpp"
#include "campaign/executor.hpp"
#include "campaign/grid.hpp"
#include "harness/runner.hpp"

namespace {

using namespace lintime;

struct Dist {
  double min = 0, mean = 0, max = 0;
};

Dist pool(const campaign::CampaignResult& result, const std::string& algo, double u,
          const char* op) {
  std::vector<double> samples;
  for (const auto& job : result.jobs) {
    if (!job.ok) continue;
    bool match_algo = false, match_u = false;
    for (const auto& [k, v] : job.tags) {
      if (k == "algo" && v == algo) match_algo = true;
      if (k == "u" && std::stod(v) == u) match_u = true;
    }
    if (!match_algo || !match_u) continue;
    const auto it = job.latency_samples.find(op);
    if (it == job.latency_samples.end()) continue;
    samples.insert(samples.end(), it->second.begin(), it->second.end());
  }
  Dist d;
  if (samples.empty()) return d;
  d.min = *std::min_element(samples.begin(), samples.end());
  d.max = *std::max_element(samples.begin(), samples.end());
  for (const double s : samples) d.mean += s;
  d.mean /= static_cast<double>(samples.size());
  return d;
}

}  // namespace

int main() {
  adt::QueueType queue;

  campaign::CampaignSpec spec;
  spec.name = "latency-distribution";
  const auto points = campaign::Grid{}
                          .axis("u", std::vector<double>{0.5, 2.0, 4.0})
                          .axis("algo", {std::string("algorithm1"), std::string("centralized")})
                          .range("seed", 1, 20)
                          .points();
  for (const auto& p : points) {
    sim::ModelParams params{5, 10.0, p.num("u"), 0.0};
    params.eps = params.optimal_eps();
    const auto seed = static_cast<std::uint64_t>(p.integer("seed"));

    campaign::Job job;
    job.name = p.label();
    job.tags = p.coords();
    job.type = &queue;
    job.spec.params = params;
    job.spec.algo = p.get("algo") == "centralized" ? harness::AlgoKind::kCentralized
                                                   : harness::AlgoKind::kAlgorithmOne;
    job.spec.X = job.spec.algo == harness::AlgoKind::kAlgorithmOne
                     ? (params.d - params.eps) / 2
                     : 0.0;
    job.spec.delays =
        std::make_shared<sim::UniformRandomDelay>(params.min_delay(), params.d, seed);
    job.spec.scripts = harness::random_scripts(queue, params.n, 6, seed * 31);
    spec.jobs.push_back(std::move(job));
  }

  const auto result = campaign::run_campaign(spec);

  std::printf("Latency distributions under uniformly random delays in [d-u, d]\n");
  std::printf("(20 seeds x 6 ops/process; Algorithm 1 at X = (d-eps)/2; %zu campaign jobs)\n\n",
              result.jobs.size());

  for (const double u : {0.5, 2.0, 4.0}) {
    sim::ModelParams params{5, 10.0, u, 0.0};
    params.eps = params.optimal_eps();
    std::printf("u = %g (delays in [%g, %g], eps = %g):\n", u, params.min_delay(), params.d,
                params.eps);
    std::printf("  %-14s %-10s %26s %26s\n", "impl", "op", "min / mean / max",
                "class bound");
    for (const auto algo : {harness::AlgoKind::kAlgorithmOne, harness::AlgoKind::kCentralized}) {
      for (const char* op : {"enqueue", "peek", "dequeue"}) {
        const auto dist = pool(result, harness::to_string(algo), u, op);
        std::string bound = "2d = " + std::to_string(2 * params.d);
        if (algo == harness::AlgoKind::kAlgorithmOne) {
          const double X = (params.d - params.eps) / 2;
          bound = op == std::string("enqueue") ? "X+eps" : op == std::string("peek") ? "d-X"
                                                                                     : "d+eps";
          const double v = op == std::string("enqueue") ? X + params.eps
                           : op == std::string("peek")  ? params.d - X
                                                        : params.d + params.eps;
          bound += " = " + std::to_string(v);
        }
        std::printf("  %-14s %-10s %8.2f / %6.2f / %6.2f %28s\n",
                    harness::to_string(algo), op, dist.min, dist.mean, dist.max, bound.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("=> Algorithm 1's accessor/mutator latencies are delay-independent\n"
              "   (fixed timers); only OOPs may finish early under concurrency.\n"
              "   The centralized baseline's latency follows the delay distribution.\n");
  return 0;
}
