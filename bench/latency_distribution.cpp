// Latency distributions under random (rather than worst-case) delays -- a
// systems-level companion to the tables: Algorithm 1's response times are
// timer-driven and therefore CONSTANT per class regardless of realized
// delays, while the centralized baseline's latency tracks the delay
// distribution.  Swept over delay spreads (u) and seeds.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace {

using namespace lintime;
using adt::Value;

struct Dist {
  double min = 0, mean = 0, max = 0;
};

Dist distribution(harness::AlgoKind algo, const sim::ModelParams& params, const char* op,
                  int seeds) {
  adt::QueueType queue;
  std::vector<double> samples;
  for (int seed = 1; seed <= seeds; ++seed) {
    harness::RunSpec spec;
    spec.params = params;
    spec.algo = algo;
    spec.X = (algo == harness::AlgoKind::kAlgorithmOne) ? (params.d - params.eps) / 2 : 0.0;
    spec.delays = std::make_shared<sim::UniformRandomDelay>(
        params.min_delay(), params.d, static_cast<std::uint64_t>(seed));
    spec.scripts = harness::random_scripts(queue, params.n, 6,
                                           static_cast<std::uint64_t>(seed) * 31);
    const auto result = harness::execute(queue, spec);
    for (const auto& rec : result.record.ops) {
      if (rec.op == op && rec.complete()) samples.push_back(rec.latency());
    }
  }
  Dist d;
  if (samples.empty()) return d;
  d.min = *std::min_element(samples.begin(), samples.end());
  d.max = *std::max_element(samples.begin(), samples.end());
  for (const double s : samples) d.mean += s;
  d.mean /= static_cast<double>(samples.size());
  return d;
}

}  // namespace

int main() {
  std::printf("Latency distributions under uniformly random delays in [d-u, d]\n");
  std::printf("(20 seeds x 6 ops/process; Algorithm 1 at X = (d-eps)/2)\n\n");

  for (const double u : {0.5, 2.0, 4.0}) {
    sim::ModelParams params{5, 10.0, u, 0.0};
    params.eps = params.optimal_eps();
    std::printf("u = %g (delays in [%g, %g], eps = %g):\n", u, params.min_delay(), params.d,
                params.eps);
    std::printf("  %-14s %-10s %26s %26s\n", "impl", "op", "min / mean / max",
                "class bound");
    for (const auto algo : {harness::AlgoKind::kAlgorithmOne, harness::AlgoKind::kCentralized}) {
      for (const char* op : {"enqueue", "peek", "dequeue"}) {
        const auto dist = distribution(algo, params, op, 20);
        std::string bound = "2d = " + std::to_string(2 * params.d);
        if (algo == harness::AlgoKind::kAlgorithmOne) {
          const double X = (params.d - params.eps) / 2;
          bound = op == std::string("enqueue") ? "X+eps" : op == std::string("peek") ? "d-X"
                                                                                     : "d+eps";
          const double v = op == std::string("enqueue") ? X + params.eps
                           : op == std::string("peek")  ? params.d - X
                                                        : params.d + params.eps;
          bound += " = " + std::to_string(v);
        }
        std::printf("  %-14s %-10s %8.2f / %6.2f / %6.2f %28s\n",
                    harness::to_string(algo), op, dist.min, dist.mean, dist.max, bound.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("=> Algorithm 1's accessor/mutator latencies are delay-independent\n"
              "   (fixed timers); only OOPs may finish early under concurrency.\n"
              "   The centralized baseline's latency follows the delay distribution.\n");
  return 0;
}
