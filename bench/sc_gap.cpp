// The sequential-consistency gap (the paper's motivating related work:
// Lipton-Sandberg, Attiya-Welch): the same workload run under (a) the
// paper's linearizable Algorithm 1, (b) the fast sequentially consistent
// implementation, and (c) the centralized folklore algorithm -- with per-class
// latencies and both checkers' verdicts.  The SC implementation undercuts
// every linearizability lower bound proven in the paper (that is the point:
// the bounds price linearizability specifically).

#include <cstdio>

#include "adt/queue_type.hpp"
#include "bench_util.hpp"
#include "lin/checker.hpp"
#include "lin/sc_checker.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using harness::AlgoKind;

  const auto params = bench::default_params();
  adt::QueueType queue;

  std::printf("Sequential consistency vs. linearizability (n=%d, d=%g, u=%g, eps=%g)\n\n",
              params.n, params.d, params.u, params.eps);
  std::printf("%-16s  %10s  %10s  %10s  %14s  %6s\n", "implementation", "enqueue", "peek",
              "dequeue", "linearizable", "SC");

  for (const AlgoKind algo : {AlgoKind::kAlgorithmOne, AlgoKind::kSeqConsistent,
                              AlgoKind::kCentralized, AlgoKind::kAllOop}) {
    harness::RunSpec spec;
    spec.params = params;
    spec.algo = algo;
    spec.X = (algo == AlgoKind::kAlgorithmOne) ? (params.d - params.eps) / 2 : 0.0;
    spec.delays = std::make_shared<sim::ConstantDelay>(params.d);
    spec.scripts = harness::random_scripts(queue, params.n, 6, 4242);
    const auto result = harness::execute(queue, spec);

    const auto lin_check = lin::check_linearizability(queue, result.record);
    const auto sc_check = lin::check_sequential_consistency(queue, result.record);
    std::printf("%-16s  %10.2f  %10.2f  %10.2f  %14s  %6s\n",
                harness::to_string(algo), result.stats_for("enqueue").max,
                result.stats_for("peek").max, result.stats_for("dequeue").max,
                lin_check.linearizable ? "yes" : "NO", sc_check.linearizable ? "yes" : "NO");
  }

  std::printf("\nAdversarial stale-read schedule (write at p0, immediate read at p1):\n");
  adt::QueueType q2;
  for (const AlgoKind algo : {AlgoKind::kAlgorithmOne, AlgoKind::kSeqConsistent}) {
    harness::RunSpec spec;
    spec.params = params;
    spec.algo = algo;
    spec.calls = {
        harness::Call{0.0, 0, "enqueue", Value{5}},
        harness::Call{params.eps + 0.1, 1, "peek", Value::nil()},
    };
    const auto result = harness::execute(q2, spec);
    const auto lin_check = lin::check_linearizability(q2, result.record);
    const auto sc_check = lin::check_sequential_consistency(q2, result.record);
    std::printf("  %-16s peek -> %-4s  linearizable=%s SC=%s\n", harness::to_string(algo),
                result.record.ops[1].ret.to_string().c_str(),
                lin_check.linearizable ? "yes" : "NO", sc_check.linearizable ? "yes" : "NO");
  }
  std::printf("\n=> sequential consistency admits |mutator| = |accessor| = 0 concurrently,\n"
              "   which Theorems 2-5 prove impossible for linearizability.\n");
  return 0;
}
