// Reproduces Table 4: Operation Bounds for Simple Rooted Trees (Insert,
// Delete, Depth, Insert + Depth, Delete + Depth).
//
// The paper leaves the tree's sequential specification open; this library
// ships two insert flavours (see src/adt/tree_type.hpp):
//   * `move`   (last-wins re-parent) -- k-wise last-sensitive, instantiating
//     Theorem 3 at k = n as in the paper's Insert row;
//   * `insert` (first-wins attach)   -- satisfies Theorem 5's discriminator
//     hypotheses with `depth`, backing the Insert + Depth row.
// `remove` (leaf delete) is last-sensitive at k = 2, so Theorem 3
// instantiates at u/2 for it (matching the previous bound; the paper's
// (1-1/n)u claim for Delete needs a delete that distinguishes the last of n
// removals, which no natural removal semantics provides -- see
// EXPERIMENTS.md).

#include <cstdio>

#include "adt/tree_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::TreeType;
  using adt::Value;
  using bench::fmt;
  using bench::MeasureSpec;
  using harness::AlgoKind;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  const double eps = params.eps;
  const double d = params.d;
  const double u = params.u;
  const double m = params.m();
  TreeType tree;

  const std::vector<ScriptOp> chain = {
      ScriptOp{"insert", TreeType::edge(0, 1)},
      ScriptOp{"insert", TreeType::edge(1, 2)},
      ScriptOp{"insert", TreeType::edge(2, 3)},
  };

  // One campaign batch for all measured cells (see table1_registers.cpp).
  bench::MeasureBatch batch(params, "table4-trees");
  auto ours = [&](const char* op, Value arg, double X, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.X = X;
    s.rho = std::move(rho);
    return batch.add(tree, std::move(s));
  };
  auto central = [&](const char* op, Value arg, std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.algo = AlgoKind::kCentralized;
    s.rho = std::move(rho);
    return batch.add(tree, std::move(s));
  };

  const auto h_move = ours("move", TreeType::edge(0, 4), 0.0, chain);
  const auto h_move_c = central("move", TreeType::edge(0, 4), chain);
  const auto h_rm = ours("remove", Value{3}, 0.0, chain);
  const auto h_rm_c = central("remove", Value{3}, chain);
  const auto h_depth = ours("depth", Value{2}, d - eps, chain);
  const auto h_depth_c = central("depth", Value{2}, chain);
  const auto h_ins = ours("insert", TreeType::edge(0, 4), 0.0, chain);
  const auto h_ins_c = central("insert", TreeType::edge(0, 4), chain);
  const auto h_depth_x0 = ours("depth", Value{2}, 0.0, chain);
  batch.run();
  auto L = [&](std::size_t h) { return batch.latency(h); };

  std::vector<bench::TableRow> rows;
  rows.push_back({"Insert (move)", "u/2 [13]",
                  "(1-1/n)u = " + fmt((1.0 - 1.0 / params.n) * u) + " (Thm 3, k=n)",
                  "eps = " + fmt(eps) + " (X=0)",
                  L(h_move), L(h_move_c),
                  "last-wins re-parent semantics"});
  rows.push_back({"Delete (remove)", "u/2 [13]", "u/2 = " + fmt(u / 2) + " (Thm 3, k=2)",
                  "eps = " + fmt(eps) + " (X=0)", L(h_rm), L(h_rm_c),
                  "leaf removal: last-sensitive only at k=2"});
  rows.push_back({"Depth", "-", "u/4 = " + fmt(u / 4) + " (Thm 2)",
                  "eps = " + fmt(eps) + " (X=d-eps)",
                  L(h_depth), L(h_depth_c),
                  "first lower bound for Depth"});
  rows.push_back({"Insert + Depth", "d [13]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 5)",
                  "d+eps = " + fmt(d + eps),
                  L(h_ins) + L(h_depth_x0),
                  L(h_ins_c) + L(h_depth_c),
                  "first-wins insert semantics"});
  rows.push_back({"Delete + Depth", "d [13]", "d + min{eps,u,d/3} = " + fmt(d + m) + " (Thm 5)",
                  "d+eps = " + fmt(d + eps),
                  L(h_rm) + L(h_depth_x0),
                  L(h_rm_c) + L(h_depth_c), ""});

  bench::print_table("Table 4: Operation Bounds for Simple Rooted Trees", params, rows);

  {
    shift::Theorem3Spec spec;  // Insert row via move, k = n = 5
    spec.op = "move";
    spec.args = {TreeType::edge(0, 9), TreeType::edge(1, 9), TreeType::edge(2, 9),
                 TreeType::edge(3, 9), TreeType::edge(9, 9)};
    // Five distinct arguments; the last is a deliberate no-op edge (9 under
    // itself) -- replace it with a real one: parents 0..3 exist via chain,
    // add parent 4... use chain + extra node.
    spec.args[4] = TreeType::edge(4, 9);
    spec.rho = chain;
    spec.rho.push_back(ScriptOp{"insert", TreeType::edge(3, 4)});
    spec.probe = {ScriptOp{"depth", Value{9}}, ScriptOp{"parent", Value{9}}};
    bench::print_experiment(shift::theorem3_last_sensitive(tree, spec, params));
  }
  {
    shift::Theorem3Spec spec;  // Delete row via remove, k = 2
    spec.op = "remove";
    spec.args = {Value{1}, Value{2}};
    spec.rho = {ScriptOp{"insert", TreeType::edge(0, 1)},
                ScriptOp{"insert", TreeType::edge(1, 2)}};
    spec.probe = {ScriptOp{"depth", Value{1}}, ScriptOp{"depth", Value{2}}};
    bench::print_experiment(shift::theorem3_last_sensitive(tree, spec, params));
  }
  {
    shift::Theorem2Spec spec;  // Depth row
    spec.aop = "depth";
    spec.aop_arg = Value{4};
    spec.mutator_op = "move";
    spec.mutator_arg = TreeType::edge(1, 4);
    spec.rho = {ScriptOp{"insert", TreeType::edge(0, 1)},
                ScriptOp{"move", TreeType::edge(0, 4)}};
    bench::print_experiment(shift::theorem2_pure_accessor(tree, spec, params));
  }
  {
    shift::Theorem5Spec spec;  // Insert + Depth row
    spec.op = "insert";
    spec.arg0 = TreeType::edge(0, 3);
    spec.arg1 = TreeType::edge(1, 3);
    spec.aop = "depth";
    spec.aop_arg = Value{3};
    spec.rho = {ScriptOp{"insert", TreeType::edge(0, 1)}};
    bench::print_experiment(shift::theorem5_sum(tree, spec, params));
  }
  {
    shift::Theorem5Spec spec;  // Delete + Depth row
    spec.op = "remove";
    spec.arg0 = Value{1};
    spec.arg1 = Value{2};
    spec.aop = "depth";
    spec.aop_arg = Value{2};
    spec.rho = {ScriptOp{"insert", TreeType::edge(0, 1)},
                ScriptOp{"insert", TreeType::edge(1, 2)}};
    bench::print_experiment(shift::theorem5_sum(tree, spec, params));
  }
  return 0;
}
