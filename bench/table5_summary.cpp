// Reproduces Table 5 (the paper's summary): upper bounds per functional
// class (AOP d-X, MOP X+eps, OOP d+eps) and lower bounds per algebraic
// class, with the measured values aggregated across all four table data
// types and the experiment status for each theorem.

#include <cstdio>

#include <algorithm>

#include "adt/queue_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "bench_util.hpp"

int main() {
  using namespace lintime;
  using adt::Value;
  using bench::fmt;
  using bench::MeasureSpec;
  using harness::ScriptOp;

  const auto params = bench::default_params();
  const double d = params.d;
  const double u = params.u;
  const double eps = params.eps;
  const double m = params.m();

  adt::RmwRegisterType reg;
  adt::QueueType queue;
  adt::StackType st;
  adt::TreeType tree;

  // Every measured cell (including the per-n sweep below) is queued into one
  // campaign batch and executed on the worker pool before any printing.
  bench::MeasureBatch batch(params, "table5-summary");
  auto measure = [&](const adt::DataType& type, const char* op, Value arg, double X,
                     std::vector<ScriptOp> rho = {}) {
    MeasureSpec s;
    s.op = op;
    s.arg = std::move(arg);
    s.X = X;
    s.rho = std::move(rho);
    return batch.add(type, std::move(s));
  };

  // Upper bounds (Algorithm 1), measured across types at both ends of X.
  const std::vector<ScriptOp> q_seed = {ScriptOp{"enqueue", Value{1}}};
  const std::vector<ScriptOp> s_seed = {ScriptOp{"push", Value{1}}};

  const std::vector<std::size_t> h_aop = {
      measure(queue, "peek", Value::nil(), d - eps, q_seed),
      measure(st, "peek", Value::nil(), d - eps, s_seed),
      measure(reg, "read", Value::nil(), d - eps),
      measure(tree, "depth", Value{0}, d - eps)};
  const std::vector<std::size_t> h_mop = {
      measure(queue, "enqueue", Value{1}, 0.0), measure(st, "push", Value{1}, 0.0),
      measure(reg, "write", Value{1}, 0.0),
      measure(tree, "insert", adt::TreeType::edge(0, 1), 0.0)};
  const std::vector<std::size_t> h_oop = {
      measure(queue, "dequeue", Value::nil(), 0.0, q_seed),
      measure(st, "pop", Value::nil(), 0.0, s_seed), measure(reg, "fetch_add", Value{1}, 0.0)};

  // The per-n pure-mutator sweep (printed at the end).
  const std::vector<int> sweep_ns = {2, 3, 5, 8, 16};
  adt::QueueType q2;
  std::vector<std::size_t> h_sweep;
  for (const int nn : sweep_ns) {
    sim::ModelParams p{nn, 10.0, u, 0.0};
    p.eps = p.optimal_eps();
    MeasureSpec s;
    s.op = "enqueue";
    s.arg = Value{1};
    s.X = 0.0;
    h_sweep.push_back(batch.add(q2, std::move(s), p));
  }

  batch.run();
  auto max_of = [&](const std::vector<std::size_t>& hs) {
    double best = -1;
    for (const std::size_t h : hs) best = std::max(best, batch.latency(h));
    return best;
  };

  std::printf("Table 5: Summary of Upper and Lower Bounds per Operation Class\n");
  std::printf("model: n=%d, d=%g, u=%g, eps=(1-1/n)u=%g, m=min{eps,u,d/3}=%g\n\n", params.n, d,
              u, eps, m);

  const double aop_fast = max_of(h_aop);
  const double mop_fast = max_of(h_mop);
  const double oop = max_of(h_oop);

  std::printf("Upper bounds (Algorithm 1, X in [0, d-eps]):\n");
  std::printf("  %-28s formula      at best X   measured-max-across-types\n", "class");
  std::printf("  %-28s d - X        %-10s  %s\n", "pure accessor (AOP)", fmt(eps).c_str(),
              fmt(aop_fast).c_str());
  std::printf("  %-28s X + eps      %-10s  %s\n", "pure mutator (MOP)", fmt(eps).c_str(),
              fmt(mop_fast).c_str());
  std::printf("  %-28s d + eps      %-10s  %s\n\n", "mixed (OOP)", fmt(d + eps).c_str(),
              fmt(oop).c_str());

  std::printf("Lower bounds (algebraic classes):\n");
  std::printf("  %-34s %-22s example operations\n", "class", "bound");
  std::printf("  %-34s %-22s read, peek, depth\n", "pure accessor (Thm 2)",
              ("u/4 = " + fmt(u / 4)).c_str());
  std::printf("  %-34s %-22s write, enqueue, push, move\n", "last-sensitive mutator (Thm 3)",
              ("(1-1/k)u = " + fmt((1.0 - 1.0 / params.n) * u) + " @k=n").c_str());
  std::printf("  %-34s %-22s RMW, dequeue, pop\n", "pair-free (Thm 4)",
              ("d + m = " + fmt(d + m)).c_str());
  std::printf("  %-34s %-22s enqueue+peek, insert+depth\n",
              "transposable + discriminating AOP", ("d + m = " + fmt(d + m) + " (Thm 5, sum)").c_str());
  std::printf("\n");

  // Bounds as a function of n: with optimal synchronization eps = (1-1/n)u,
  // the pure-mutator upper bound X+eps (X=0) and the Theorem 3 lower bound
  // (1-1/n)u coincide for every n, approaching u as n grows.
  std::printf("Pure-mutator bound vs. n (eps = (1-1/n)u, u = %g):\n", u);
  std::printf("  %-4s %-12s %-12s %-10s\n", "n", "LB (Thm 3)", "UB (eps)", "measured");
  for (std::size_t i = 0; i < sweep_ns.size(); ++i) {
    const int nn = sweep_ns[i];
    const double opt_eps = (1.0 - 1.0 / nn) * u;
    std::printf("  %-4d %-12s %-12s %-10s\n", nn, fmt(opt_eps).c_str(), fmt(opt_eps).c_str(),
                fmt(batch.latency(h_sweep[i])).c_str());
  }
  std::printf("\n");

  // Tightness notes from Section 6.1.
  std::printf("Tightness (Section 6.1):\n");
  std::printf("  MOP: eps = (1-1/n)u [optimal sync] -> upper %s == lower %s: TIGHT\n",
              fmt(eps).c_str(), fmt((1.0 - 1.0 / params.n) * u).c_str());
  std::printf("  OOP: eps <= min{u, d/3} here, so upper d+eps == lower d+m: %s\n",
              (std::abs(eps - m) < 1e-12 ? "TIGHT" : "gap"));
  std::printf("  AOP: gap remains between u/4 and eps (= (1-1/n)u)\n");
  return 0;
}
