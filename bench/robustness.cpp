// Assumption-sensitivity sweep: what the paper's model assumptions buy.
// Algorithm 1 is proven correct under (a) drift-free clocks synchronized to
// eps and (b) reliable links with delays in [d-u, d].  This bench violates
// each assumption by a controlled amount and measures the fraction of random
// workloads that stop being linearizable -- the cliff is where the
// assumption's slack runs out.
//
// Each (violation level, seed) pair is one campaign job with the
// linearizability check enabled; survival rates are reduced from the job
// verdicts.  A job that throws (e.g. an invocation overlap caused by extreme
// drift) is captured by the executor as a failed job and counts as a
// non-survivor, exactly as the old sequential loop treated exceptions.

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "adt/queue_type.hpp"
#include "campaign/executor.hpp"
#include "campaign/sink.hpp"
#include "harness/runner.hpp"

namespace {

using namespace lintime;

constexpr int kSeeds = 30;

campaign::CampaignSpec build_campaign(const adt::DataType& type) {
  campaign::CampaignSpec spec;
  spec.name = "robustness";
  sim::ModelParams params{4, 10.0, 2.0, 1.5};

  auto add = [&](const std::string& mode, double level, int seed) {
    campaign::Job job;
    job.name = mode + "=" + campaign::fmt_double(level) + "/seed=" + std::to_string(seed);
    job.tags = {{"mode", mode},
                {"level", campaign::fmt_double(level)},
                {"seed", std::to_string(seed)}};
    job.type = &type;
    job.spec.params = params;
    job.spec.algo = harness::AlgoKind::kAlgorithmOne;
    job.spec.X = 0.0;
    job.spec.delays = std::make_shared<sim::UniformRandomDelay>(
        params.min_delay(), params.d, static_cast<std::uint64_t>(seed));
    if (mode == "drift") {
      // Alternating drift: half the clocks fast by `level`, half slow.
      job.spec.clock_rates = {1.0 + level, 1.0 - level, 1.0 + level, 1.0 - level};
    } else {
      job.spec.drop_probability = level;
      job.spec.drop_seed = static_cast<std::uint64_t>(seed) * 13;
    }
    // Long workload so drift has time to accumulate: ~800 time units.
    const auto scripts =
        harness::random_scripts(type, params.n, 20, static_cast<std::uint64_t>(seed) * 7);
    double t = 0;
    for (std::size_t i = 0; i < 20; ++i) {
      for (int p = 0; p < params.n; ++p) {
        job.spec.calls.push_back(harness::Call{t + p * 0.25, p,
                                               scripts[static_cast<std::size_t>(p)][i].op,
                                               scripts[static_cast<std::size_t>(p)][i].arg});
      }
      t += 40.0;  // spaced: every op completes before the process's next
    }
    job.check_linearizability = true;
    spec.jobs.push_back(std::move(job));
  };

  for (const double rho : {0.0, 1e-4, 1e-3, 1e-2, 3e-2, 1e-1}) {
    for (int seed = 1; seed <= kSeeds; ++seed) add("drift", rho, seed);
  }
  for (const double p : {0.0, 0.001, 0.01, 0.05, 0.1, 0.3}) {
    for (int seed = 1; seed <= kSeeds; ++seed) add("drop", p, seed);
  }
  return spec;
}

/// Survival per (mode, level): fraction of the level's jobs whose run both
/// completed and checked linearizable.
std::map<std::pair<std::string, std::string>, double> survival(
    const campaign::CampaignResult& result) {
  std::map<std::pair<std::string, std::string>, std::pair<int, int>> counts;  // ok, total
  for (const auto& job : result.jobs) {
    std::string mode, level;
    for (const auto& [k, v] : job.tags) {
      if (k == "mode") mode = v;
      if (k == "level") level = v;
    }
    auto& [ok, total] = counts[{mode, level}];
    ++total;
    if (job.ok &&
        job.metrics.verdict == campaign::JobMetrics::Verdict::kLinearizable) {
      ++ok;
    }
  }
  std::map<std::pair<std::string, std::string>, double> out;
  for (const auto& [key, c] : counts) {
    out[key] = static_cast<double>(c.first) / c.second;
  }
  return out;
}

}  // namespace

int main() {
  adt::QueueType queue;
  const auto spec = build_campaign(queue);
  const auto result = campaign::run_campaign(spec);
  const auto rates = survival(result);

  std::printf("Assumption sensitivity (n=4, d=10, u=2, eps=1.5, 80-op random workloads,\n");
  std::printf("%d seeds each; survival = fraction of runs still linearizable;\n", kSeeds);
  std::printf("%zu campaign jobs)\n\n", result.jobs.size());

  std::printf("Clock drift (rates 1 +- rho; the model assumes rho = 0):\n");
  std::printf("  %-10s %s\n", "rho", "survival");
  for (const double rho : {0.0, 1e-4, 1e-3, 1e-2, 3e-2, 1e-1}) {
    std::printf("  %-10g %.2f\n", rho, rates.at({"drift", campaign::fmt_double(rho)}));
  }

  std::printf("\nMessage loss (drop probability; the model assumes 0):\n");
  std::printf("  %-10s %s\n", "p(drop)", "survival");
  for (const double p : {0.0, 0.001, 0.01, 0.05, 0.1, 0.3}) {
    std::printf("  %-10g %.2f\n", p, rates.at({"drop", campaign::fmt_double(p)}));
  }

  std::printf("\n=> the algorithm tolerates drift while accumulated skew stays within the\n");
  std::printf("   eps slack of its timers, and any persistent loss eventually diverges a\n");
  std::printf("   replica -- quantifying why the paper assumes synchronized clocks and\n");
  std::printf("   reliable links rather than stating them for convenience.\n");
  return 0;
}
