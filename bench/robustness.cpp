// Assumption-sensitivity sweep: what the paper's model assumptions buy.
// Algorithm 1 is proven correct under (a) drift-free clocks synchronized to
// eps and (b) reliable links with delays in [d-u, d].  This bench violates
// each assumption by a controlled amount and measures the fraction of random
// workloads that stop being linearizable -- the cliff is where the
// assumption's slack runs out.

#include <cstdio>
#include <memory>

#include "adt/queue_type.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "sim/world.hpp"

namespace {

using namespace lintime;
using adt::Value;

/// Runs `seeds` random workloads under the given config mutator; returns the
/// fraction that remain linearizable.
double survival_rate(double drift, double drop, int seeds) {
  adt::QueueType queue;
  sim::ModelParams params{4, 10.0, 2.0, 1.5};
  int ok = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::WorldConfig config;
    config.params = params;
    config.delays = std::make_shared<sim::UniformRandomDelay>(
        params.min_delay(), params.d, static_cast<std::uint64_t>(seed));
    // Alternating drift: half the clocks fast by `drift`, half slow.
    config.clock_rates = {1.0 + drift, 1.0 - drift, 1.0 + drift, 1.0 - drift};
    config.drop_probability = drop;
    config.drop_seed = static_cast<std::uint64_t>(seed) * 13;

    sim::World world(config, [&](sim::ProcId) {
      return std::make_unique<core::AlgorithmOneProcess>(
          queue, core::TimingPolicy::standard(params, 0.0));
    });
    // Long workload so drift has time to accumulate: ~800 time units.
    const auto scripts =
        harness::random_scripts(queue, params.n, 20, static_cast<std::uint64_t>(seed) * 7);
    double t = 0;
    for (std::size_t i = 0; i < 20; ++i) {
      for (int p = 0; p < params.n; ++p) {
        world.invoke_at(t + p * 0.25, p, scripts[static_cast<std::size_t>(p)][i].op,
                        scripts[static_cast<std::size_t>(p)][i].arg);
      }
      t += 40.0;  // spaced: every op completes before the process's next
    }
    try {
      world.run();
      if (lin::check_linearizability(queue, world.record()).linearizable) ++ok;
    } catch (const std::exception&) {
      // e.g. overlap caused by extreme drift: counts as failure
    }
  }
  return static_cast<double>(ok) / seeds;
}

}  // namespace

int main() {
  const int seeds = 30;
  std::printf("Assumption sensitivity (n=4, d=10, u=2, eps=1.5, 80-op random workloads,\n");
  std::printf("%d seeds each; survival = fraction of runs still linearizable)\n\n", seeds);

  std::printf("Clock drift (rates 1 +- rho; the model assumes rho = 0):\n");
  std::printf("  %-10s %s\n", "rho", "survival");
  for (const double rho : {0.0, 1e-4, 1e-3, 1e-2, 3e-2, 1e-1}) {
    std::printf("  %-10g %.2f\n", rho, survival_rate(rho, 0.0, seeds));
  }

  std::printf("\nMessage loss (drop probability; the model assumes 0):\n");
  std::printf("  %-10s %s\n", "p(drop)", "survival");
  for (const double p : {0.0, 0.001, 0.01, 0.05, 0.1, 0.3}) {
    std::printf("  %-10g %.2f\n", p, survival_rate(0.0, p, seeds));
  }

  std::printf("\n=> the algorithm tolerates drift while accumulated skew stays within the\n");
  std::printf("   eps slack of its timers, and any persistent loss eventually diverges a\n");
  std::printf("   replica -- quantifying why the paper assumes synchronized clocks and\n");
  std::printf("   reliable links rather than stating them for convenience.\n");
  return 0;
}
